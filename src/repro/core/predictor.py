"""High-level learned performance model API.

:class:`LearnedPerformanceModel` ties the pieces together the way the paper
uses them: one model is trained *per accelerator configuration and per metric*
(latency or energy) on simulator measurements of NASBench cells, using a
60/20/20 split, and is then evaluated with the Table 8 metrics (average
estimation accuracy, Spearman and Pearson correlation with ground truth).
Once trained, predictions take well under a millisecond per cell — the paper's
motivation for replacing cycle-accurate simulation in design-space
exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ModelError
from ..nasbench.cell import Cell
from .features import GraphTuple, cell_to_graph
from .metrics import EstimationReport, evaluate_predictions
from .model import (
    DEFAULT_HIDDEN_SIZE,
    DEFAULT_LATENT_SIZE,
    DEFAULT_NUM_STEPS,
    DEFAULT_USE_LAYER_NORM,
    EncodeProcessDecode,
)
from .trainer import (
    DatasetSplit,
    TargetNormalizer,
    TrainingHistory,
    predict as predict_normalized,
    split_dataset,
    train_model,
)


@dataclass(frozen=True)
class TrainingSettings:
    """Hyperparameters of the learned performance model (paper Table 8)."""

    learning_rate: float = 1e-3
    batch_size: int = 16
    epochs: int = 10
    latent_size: int = DEFAULT_LATENT_SIZE
    hidden_size: int = DEFAULT_HIDDEN_SIZE
    num_message_passing_steps: int = DEFAULT_NUM_STEPS
    use_layer_norm: bool = DEFAULT_USE_LAYER_NORM
    train_fraction: float = 0.6
    validation_fraction: float = 0.2
    log_transform_targets: bool = True
    seed: int = 0


class LearnedPerformanceModel:
    """Per-configuration GNN estimator of an accelerator performance metric."""

    def __init__(self, config_name: str, settings: TrainingSettings | None = None):
        self.config_name = config_name
        self.settings = settings or TrainingSettings()
        self.normalizer = TargetNormalizer(self.settings.log_transform_targets)
        self.model = EncodeProcessDecode(
            latent_size=self.settings.latent_size,
            hidden_size=self.settings.hidden_size,
            num_message_passing_steps=self.settings.num_message_passing_steps,
            use_layer_norm=self.settings.use_layer_norm,
            seed=self.settings.seed,
        )
        self.history: TrainingHistory | None = None
        self.split: DatasetSplit | None = None
        self._graphs: list[GraphTuple] = []
        self._targets: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, cells: Sequence[Cell], targets: Sequence[float]) -> TrainingHistory:
        """Train the model on (cell, measurement) pairs.

        The split into train/validation/test follows the paper (60/20/20); the
        held-out test indices are kept so :meth:`evaluate` reports honest
        generalization metrics.
        """
        if len(cells) != len(targets):
            raise ModelError("cells and targets must have the same length")
        if len(cells) < 10:
            raise ModelError("need at least 10 samples to fit the learned model")

        self._graphs = [cell_to_graph(cell) for cell in cells]
        self._targets = np.asarray(targets, dtype=float)
        self.normalizer.fit(self._targets)
        normalized = self.normalizer.transform(self._targets)

        self.split = split_dataset(
            len(cells),
            train_fraction=self.settings.train_fraction,
            validation_fraction=self.settings.validation_fraction,
            seed=self.settings.seed,
        )
        train_graphs = [self._graphs[i] for i in self.split.train]
        validation_graphs = [self._graphs[i] for i in self.split.validation]
        self.history = train_model(
            self.model,
            train_graphs,
            normalized[self.split.train],
            validation_graphs,
            normalized[self.split.validation],
            epochs=self.settings.epochs,
            batch_size=self.settings.batch_size,
            learning_rate=self.settings.learning_rate,
            seed=self.settings.seed,
        )
        return self.history

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict_cells(self, cells: Sequence[Cell]) -> np.ndarray:
        """Predict the performance metric for a list of cells (raw units)."""
        self._require_fitted()
        graphs = [cell_to_graph(cell) for cell in cells]
        normalized = predict_normalized(self.model, graphs)
        return self.normalizer.inverse_transform(normalized)

    def predict_cell(self, cell: Cell) -> float:
        """Predict the performance metric of a single cell (raw units)."""
        return float(self.predict_cells([cell])[0])

    # ------------------------------------------------------------------ #
    # Evaluation (Table 8)
    # ------------------------------------------------------------------ #
    def evaluate(self, subset: str = "test") -> EstimationReport:
        """Evaluate on the held-out split (``"test"``, ``"validation"`` or ``"train"``)."""
        self._require_fitted()
        assert self.split is not None and self._targets is not None
        indices = {
            "train": self.split.train,
            "validation": self.split.validation,
            "test": self.split.test,
        }.get(subset)
        if indices is None:
            raise ModelError(f"unknown subset {subset!r}")
        graphs = [self._graphs[i] for i in indices]
        normalized = predict_normalized(self.model, graphs)
        predictions = self.normalizer.inverse_transform(normalized)
        return evaluate_predictions(
            predictions,
            self._targets[indices],
            training_set_size=len(self.split.train),
        )

    def _require_fitted(self) -> None:
        if self.history is None:
            raise ModelError("the learned performance model has not been fitted yet")
