"""High-level learned performance model API.

:class:`LearnedPerformanceModel` ties the pieces together the way the paper
uses them: one model is trained *per accelerator configuration and per metric*
(latency or energy) on simulator measurements of NASBench cells, using a
60/20/20 split, and is then evaluated with the Table 8 metrics (average
estimation accuracy, Spearman and Pearson correlation with ground truth).
Once trained, predictions take well under a millisecond per cell — the paper's
motivation for replacing cycle-accurate simulation in design-space
exploration.

The training population is packed **once** into a
:class:`~repro.core.graph_table.GraphTable`; every epoch's mini-batches are
slices of that table and whole-split inference is a single batched forward
pass.  Ground-truth labels come from the vectorized
:class:`~repro.simulator.batch.BatchSimulator` sweep (:meth:`fit_dataset`)
rather than per-cell scalar simulation, and a fitted model round-trips
through :meth:`export_state` / :meth:`restore_state` so the experiment
pipeline can cache trained weights on disk.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import ModelError
from ..nasbench.cell import Cell
from .graph_table import GraphTable
from .metrics import EstimationReport, evaluate_predictions
from .model import (
    DEFAULT_HIDDEN_SIZE,
    DEFAULT_LATENT_SIZE,
    DEFAULT_NUM_STEPS,
    DEFAULT_USE_LAYER_NORM,
    EncodeProcessDecode,
)
from .trainer import (
    DatasetSplit,
    TargetNormalizer,
    TrainingHistory,
    predict as predict_normalized,
    split_dataset,
    train_model,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..nasbench.dataset import NASBenchDataset
    from ..simulator.runner import MeasurementSet

#: Metrics a learned model can be trained on (one model per config × metric).
SUPPORTED_METRICS = ("latency", "energy")


@dataclass(frozen=True)
class TrainingSettings:
    """Hyperparameters of the learned performance model (paper Table 8)."""

    learning_rate: float = 1e-3
    batch_size: int = 16
    epochs: int = 10
    latent_size: int = DEFAULT_LATENT_SIZE
    hidden_size: int = DEFAULT_HIDDEN_SIZE
    num_message_passing_steps: int = DEFAULT_NUM_STEPS
    use_layer_norm: bool = DEFAULT_USE_LAYER_NORM
    train_fraction: float = 0.6
    validation_fraction: float = 0.2
    log_transform_targets: bool = True
    seed: int = 0


def metric_targets(
    measurements: "MeasurementSet", config_name: str, metric: str
) -> np.ndarray:
    """Ground-truth array of one (configuration, metric) pair.

    Raises :class:`ModelError` for unknown metrics or when the configuration
    has no published energy model (V3's energies are all NaN).
    """
    if metric == "latency":
        return measurements.latencies(config_name)
    if metric == "energy":
        energies = measurements.energies(config_name)
        if not np.isfinite(energies).all():
            raise ModelError(
                f"configuration {config_name!r} has no energy model; cannot "
                "train a learned energy estimator for it"
            )
        return energies
    raise ModelError(f"unknown metric {metric!r}; expected one of {SUPPORTED_METRICS}")


def table_digest(table: GraphTable) -> str:
    """Content digest of a packed population.

    Used as the cache-restore identity check of :meth:`restore_state` and by
    the sweep service to key cached trained-model states by population
    *content* (rather than by a sampling spec).
    """
    digest = hashlib.sha256()
    for array in (
        table.nodes, table.edges, table.globals_,
        table.senders, table.receivers,
        table.node_offsets, table.edge_offsets,
    ):
        digest.update(str(array.shape).encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


class LearnedPerformanceModel:
    """Per-configuration GNN estimator of an accelerator performance metric."""

    #: Smallest population the 60/20/20 split leaves usable test data for.
    MIN_FIT_SAMPLES = 10

    def __init__(self, config_name: str, settings: TrainingSettings | None = None):
        self.config_name = config_name
        self.settings = settings or TrainingSettings()
        self.normalizer = TargetNormalizer(self.settings.log_transform_targets)
        self.model = EncodeProcessDecode(
            latent_size=self.settings.latent_size,
            hidden_size=self.settings.hidden_size,
            num_message_passing_steps=self.settings.num_message_passing_steps,
            use_layer_norm=self.settings.use_layer_norm,
            seed=self.settings.seed,
        )
        self.history: TrainingHistory | None = None
        self.split: DatasetSplit | None = None
        self._table: GraphTable | None = None
        self._targets: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, cells: Sequence[Cell], targets: Sequence[float]) -> TrainingHistory:
        """Train the model on (cell, measurement) pairs.

        The cells are featurized and packed once; see :meth:`fit_table` for
        the packed entry point the pipeline uses directly.
        """
        if len(cells) != len(targets):
            raise ModelError("cells and targets must have the same length")
        return self.fit_table(GraphTable.from_cells(cells), targets)

    def fit_table(
        self, table: GraphTable, targets: Sequence[float]
    ) -> TrainingHistory:
        """Train on an already-packed :class:`GraphTable` plus raw targets.

        The split into train/validation/test follows the paper (60/20/20); the
        held-out test indices are kept so :meth:`evaluate` reports honest
        generalization metrics.
        """
        if table.num_graphs != len(targets):
            raise ModelError("graph table and targets must have the same length")
        if table.num_graphs < self.MIN_FIT_SAMPLES:
            raise ModelError(
                f"need at least {self.MIN_FIT_SAMPLES} samples to fit the learned model"
            )
        self._table = table
        self._targets = np.asarray(targets, dtype=float)
        self.normalizer.fit(self._targets)
        normalized = self.normalizer.transform(self._targets)

        self.split = split_dataset(
            table.num_graphs,
            train_fraction=self.settings.train_fraction,
            validation_fraction=self.settings.validation_fraction,
            seed=self.settings.seed,
        )
        self.history = train_model(
            self.model,
            table.subset(self.split.train),
            normalized[self.split.train],
            table.subset(self.split.validation) if len(self.split.validation) else (),
            normalized[self.split.validation] if len(self.split.validation) else None,
            epochs=self.settings.epochs,
            batch_size=self.settings.batch_size,
            learning_rate=self.settings.learning_rate,
            seed=self.settings.seed,
        )
        return self.history

    def fit_dataset(
        self,
        dataset: "NASBenchDataset",
        metric: str = "latency",
        measurements: "MeasurementSet | None" = None,
        enable_parameter_caching: bool = True,
    ) -> TrainingHistory:
        """Label *dataset* with the vectorized sweep and train on the result.

        Ground truth comes from :meth:`BatchSimulator.evaluate` (the paper's
        simulator-in-the-loop labeling, but population-wide instead of
        per-cell); pass *measurements* to reuse an existing sweep.
        """
        if measurements is None:
            from ..arch.config import get_config
            from ..simulator.batch import BatchSimulator  # deferred: import cycle

            simulator = BatchSimulator(enable_parameter_caching=enable_parameter_caching)
            measurements = simulator.evaluate(dataset, configs=[get_config(self.config_name)])
        targets = metric_targets(measurements, self.config_name, metric)
        cells = [record.cell for record in dataset]
        return self.fit(cells, targets)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict_cells(self, cells: Sequence[Cell]) -> np.ndarray:
        """Predict the performance metric for a list of cells (raw units).

        The query cells are packed once and evaluated in a single forward
        pass.
        """
        self._require_fitted()
        if len(cells) == 0:
            return np.zeros(0)
        normalized = predict_normalized(self.model, GraphTable.from_cells(cells))
        return self.normalizer.inverse_transform(normalized)

    def predict_cell(self, cell: Cell) -> float:
        """Predict the performance metric of a single cell (raw units)."""
        return float(self.predict_cells([cell])[0])

    # ------------------------------------------------------------------ #
    # Evaluation (Table 8)
    # ------------------------------------------------------------------ #
    def evaluate(self, subset: str = "test") -> EstimationReport:
        """Evaluate on the held-out split (``"test"``, ``"validation"`` or ``"train"``)."""
        self._require_fitted()
        assert self.split is not None and self._table is not None and self._targets is not None
        indices = {
            "train": self.split.train,
            "validation": self.split.validation,
            "test": self.split.test,
        }.get(subset)
        if indices is None:
            raise ModelError(f"unknown subset {subset!r}")
        normalized = predict_normalized(self.model, self._table.subset(indices))
        predictions = self.normalizer.inverse_transform(normalized)
        return evaluate_predictions(
            predictions,
            self._targets[indices],
            training_set_size=len(self.split.train),
        )

    # ------------------------------------------------------------------ #
    # Serialization (pipeline weight cache)
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict[str, np.ndarray]:
        """Flat array dict capturing everything a cache hit must restore.

        The keys are plain strings and every value is a NumPy array, so the
        state saves losslessly with :func:`numpy.savez_compressed`.
        """
        self._require_fitted()
        assert self.split is not None and self.history is not None
        assert self._targets is not None
        assert self._table is not None
        mean, std = self.normalizer.stats
        state: dict[str, np.ndarray] = {
            "table_digest": np.array(table_digest(self._table)),
            "targets": self._targets,
            "split_train": self.split.train,
            "split_validation": self.split.validation,
            "split_test": self.split.test,
            "train_losses": np.asarray(self.history.train_losses, dtype=float),
            "validation_losses": np.asarray(self.history.validation_losses, dtype=float),
            "normalizer": np.array(
                [mean, std, 1.0 if self.normalizer.log_transform else 0.0]
            ),
        }
        for index, array in enumerate(self.model.export_arrays()):
            state[f"weight_{index:04d}"] = array
        return state

    def restore_state(
        self, table: GraphTable, state: dict[str, np.ndarray]
    ) -> None:
        """Restore a previously exported model against its (re-packed) table."""
        targets = np.asarray(state["targets"], dtype=float)
        if table.num_graphs != len(targets):
            raise ModelError(
                "cached state does not match the graph table "
                f"({len(targets)} targets for {table.num_graphs} graphs)"
            )
        if str(state["table_digest"]) != table_digest(table):
            raise ModelError(
                "cached state was trained on a different population than the "
                "given graph table (feature digest mismatch)"
            )
        weight_keys = sorted(key for key in state if key.startswith("weight_"))
        self.model.load_arrays([state[key] for key in weight_keys])
        mean, std, log_flag = np.asarray(state["normalizer"], dtype=float)
        self.normalizer = TargetNormalizer.from_stats(mean, std, bool(log_flag))
        self.split = DatasetSplit(
            train=np.asarray(state["split_train"], dtype=np.int64),
            validation=np.asarray(state["split_validation"], dtype=np.int64),
            test=np.asarray(state["split_test"], dtype=np.int64),
        )
        self.history = TrainingHistory(
            train_losses=[float(v) for v in state["train_losses"]],
            validation_losses=[float(v) for v in state["validation_losses"]],
        )
        self._table = table
        self._targets = targets

    def _require_fitted(self) -> None:
        if self.history is None:
            raise ModelError("the learned performance model has not been fitted yet")
