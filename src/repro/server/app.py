"""The asyncio query server: routing, admission control, drain.

:class:`SweepServer` fronts one warm :class:`~repro.service.query.SweepService`
with a small HTTP surface (stdlib asyncio only):

==========================  =====================================================
``GET /healthz``            liveness + store digest
``GET /v1/stats``           cache / batching / admission counters
``GET /v1/top_k``           ``k`` — most accurate models (paper Figure 9)
``GET /v1/pareto``          ``config``, ``min_accuracy`` — frontier (Figure 5)
``GET /v1/latency``         ``fingerprint``, ``config`` — measured latency
``GET /v1/energy``          ``fingerprint``, ``config`` — measured energy
``GET /v1/metric``          the symmetric lookup (``metric=latency|energy``)
``POST /v1/query``          any :mod:`repro.service.api` request, wire-form
``POST /v1/predict``        predict wire-form (micro-batched)
==========================  =====================================================

Handlers are pure decode → :meth:`SweepService.query` → encode; there is no
query logic in this module.  Store-backed answers sit behind the LRU
hot-cache (:mod:`repro.server.cache`); predictions flow through the
micro-batcher (:mod:`repro.server.batching`); both the batched forward pass
and uncached store queries run on a single-worker executor so the event
loop never blocks on numpy.

**Admission control.**  At most ``max_inflight`` requests are being
answered at once; past that the server fails fast with ``429`` and a
``Retry-After`` hint rather than queueing unboundedly (the predict queue is
additionally bounded in cells — see :class:`MicroBatcher`).  During
shutdown the server stops accepting, answers ``503`` on kept-alive
connections, and drains in-flight work before closing (crash/drain states
in DESIGN.md §13).

Error mapping: malformed HTTP/JSON → ``400``; unknown fingerprints →
``404``; domain errors (:class:`ReproError`) → ``400``; saturation →
``429``/``503`` + ``Retry-After``; anything else → ``500`` with the
exception logged through :mod:`repro.obs` — never a crashed event loop.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .. import obs
from ..errors import DatasetError, ReproError
from ..service.api import (
    EnergyRequest,
    LatencyRequest,
    MetricRequest,
    ParetoRequest,
    PredictRequest,
    QueryRequest,
    QueryResponse,
    TopKRequest,
    cache_key,
    request_from_dict,
)
from .batching import MicroBatcher, ServerSaturated
from .cache import QueryCache
from .protocol import HttpRequest, ProtocolError, encode_response, read_request


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one server instance (all bounds, no behavior switches).

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`SweepServer.port` — the test suite and benchmark run this way).
    ``window_ms=0`` disables predict coalescing; ``cache_size=0`` disables
    the hot cache.
    """

    host: str = "127.0.0.1"
    port: int = 8787
    window_ms: float = 5.0
    max_batch: int = 256
    max_pending: int = 4096
    cache_size: int = 256
    max_inflight: int = 128
    retry_after: float = 1.0


class SweepServer:
    """Asyncio HTTP front-end over one warm sweep service."""

    def __init__(self, service, config: ServerConfig | None = None):
        self.service = service
        self.config = config or ServerConfig()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-server"
        )
        self.cache = QueryCache(self.config.cache_size)
        self.batcher = MicroBatcher(
            service,
            self._executor,
            window_ms=self.config.window_ms,
            max_batch=self.config.max_batch,
            max_pending=self.config.max_pending,
            retry_after=self.config.retry_after,
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._inflight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self.requests_served = 0
        self.requests_rejected = 0
        # Pre-warm the store digest off the request path: the first digest
        # computation walks every measurement array.
        self._store_digest = service.store_digest

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's choice)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        obs.log(
            "server.started",
            f"serving store {self._store_digest} on "
            f"{self.config.host}:{self.port}",
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, shut down."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        await self.batcher.drain()
        # Idle keep-alive connections are parked in read_request; closing
        # their transports ends them through the normal EOF path (no work is
        # dropped, and no task finishes cancelled).
        for writer in list(self._connections.values()):
            writer.close()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        self._executor.shutdown(wait=True)
        obs.log("server.stopped", "drained and shut down")

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = writer
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(
                        encode_response(
                            exc.status, {"error": str(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                payload = await self._respond(request)
                writer.write(payload)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            if task is not None:
                self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request: HttpRequest) -> bytes:
        """Admission control + dispatch + error mapping, to response bytes."""
        retry = {"Retry-After": str(max(1, int(self.config.retry_after)))}
        if self._draining:
            self.requests_rejected += 1
            obs.count("server.rejected_draining")
            return encode_response(
                503,
                {"error": "server is draining"},
                keep_alive=False,
                extra_headers=retry,
            )
        if self._inflight >= self.config.max_inflight:
            self.requests_rejected += 1
            obs.count("server.rejected_inflight")
            return encode_response(
                429,
                {
                    "error": (
                        f"too many in-flight requests "
                        f"(bound {self.config.max_inflight})"
                    )
                },
                extra_headers=retry,
            )
        self._inflight += 1
        self._idle.clear()
        started = time.perf_counter()
        endpoint = request.path
        try:
            status, payload, headers = await self._dispatch(request)
        except ProtocolError as exc:
            status, payload, headers = exc.status, {"error": str(exc)}, None
        except ServerSaturated as exc:
            obs.count("server.rejected_saturated")
            self.requests_rejected += 1
            status, payload, headers = 429, {"error": str(exc)}, retry
        except DatasetError as exc:
            status, payload, headers = 404, {"error": str(exc)}, None
        except ReproError as exc:
            status, payload, headers = 400, {"error": str(exc)}, None
        except Exception as exc:  # never crash the loop on a handler bug
            obs.log(
                "server.handler_error",
                f"{type(exc).__name__} answering {endpoint}: {exc}",
                level="error",
            )
            status, payload, headers = 500, {"error": "internal server error"}, None
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
        elapsed_ms = (time.perf_counter() - started) * 1e3
        obs.observe(f"server.request_ms.{endpoint.strip('/').replace('/', '_')}", elapsed_ms)
        obs.count("server.requests")
        if status == 200:
            self.requests_served += 1
        return encode_response(
            status, payload, keep_alive=request.keep_alive, extra_headers=headers
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: HttpRequest):
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", "store_digest": self._store_digest}, None
        if path == "/v1/stats" and method == "GET":
            return 200, self.stats(), None
        if path == "/v1/query" and method == "POST":
            query = request_from_dict(request.json())
        elif path == "/v1/predict" and method == "POST":
            payload = request.json()
            if isinstance(payload, dict):
                payload.setdefault("kind", "predict")
            query = request_from_dict(payload)
            if not isinstance(query, PredictRequest):
                raise ProtocolError("/v1/predict only accepts predict requests")
        elif method == "GET" and path in _GET_ROUTES:
            query = _GET_ROUTES[path](request)
        elif path in _GET_ROUTES or path in ("/v1/query", "/v1/predict"):
            return 405, {"error": f"method {method} not allowed for {path}"}, None
        else:
            return 404, {"error": f"no route for {method} {path}"}, None
        response = await self._answer(query)
        return 200, response.to_dict(), None

    async def _answer(self, query: QueryRequest) -> QueryResponse:
        """One typed request → one envelope, through batcher or cache."""
        if isinstance(query, PredictRequest):
            return await self.batcher.submit(query)
        key = cache_key(self._store_digest, query)
        cached = self.cache.get(key)
        if cached is not None:
            obs.count("server.cache_hits")
            return cached
        obs.count("server.cache_misses")
        response = await asyncio.get_running_loop().run_in_executor(
            self._executor, self.service.query, query
        )
        self.cache.put(key, response)
        return response

    def stats(self) -> dict:
        """Operational counters (the ``/v1/stats`` payload)."""
        return {
            "store_digest": self._store_digest,
            "configs": list(self.service.config_names),
            "models": len(self.service.dataset),
            "inflight": self._inflight,
            "draining": self._draining,
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
            "cache": self.cache.stats(),
            "batching": self.batcher.stats(),
        }


def _parse_top_k(request: HttpRequest) -> TopKRequest:
    try:
        k = int(request.query.get("k", "5"))
    except ValueError as exc:
        raise ProtocolError(f"k must be an integer, got {request.query['k']!r}") from exc
    return TopKRequest(k=k)


def _parse_pareto(request: HttpRequest) -> ParetoRequest:
    raw = request.query.get("min_accuracy", "0.70")
    try:
        min_accuracy = float(raw)
    except ValueError as exc:
        raise ProtocolError(f"min_accuracy must be a number, got {raw!r}") from exc
    return ParetoRequest(request.param("config"), min_accuracy)


def _parse_metric(request: HttpRequest) -> MetricRequest:
    return MetricRequest(
        request.param("fingerprint"),
        request.param("config"),
        metric=request.query.get("metric", "latency"),
    )


_GET_ROUTES = {
    "/v1/top_k": _parse_top_k,
    "/v1/pareto": _parse_pareto,
    "/v1/metric": _parse_metric,
    "/v1/latency": lambda r: LatencyRequest(r.param("fingerprint"), r.param("config")),
    "/v1/energy": lambda r: EnergyRequest(r.param("fingerprint"), r.param("config")),
}

__all__ = ["ServerConfig", "SweepServer"]
