"""Micro-batching of concurrent predict requests.

A learned-model forward pass over a packed :class:`GraphTable` costs almost
the same for 1 cell as for 100 — the per-call overhead (feature packing,
normalizer round-trip, segmented reduction setup) dominates tiny batches.
:class:`MicroBatcher` therefore coalesces concurrent
:class:`~repro.service.api.PredictRequest` submissions that share a
``(config_name, metric)`` model into **one** merged request: the first
arrival opens a bounded window (``window_ms``), later arrivals join it, and
the window flushes early the moment the batch reaches ``max_batch`` cells.
The merged forward pass runs on a single-worker executor so the event loop
stays responsive, and each caller receives exactly its slice of the packed
result.  A coalesced batch is **bit-identical** to a direct
``SweepService.predict`` call over the same merged cells (asserted by the
server test suite); across *different* batch compositions, per-cell values
agree to within BLAS reduction-order noise (~1 ULP) — the same variation
``predict_cells`` itself exhibits between batch sizes, so coalescing adds
no numerical deviation of its own.

``window_ms=0`` disables coalescing — every request is its own batch
through the identical code path — which is the benchmark's control arm.
Pending work is bounded by ``max_pending`` cells; past it, submissions fail
fast with :class:`ServerSaturated` (the server answers 429) instead of
queueing unboundedly.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor

from .. import obs
from ..errors import ReproError
from ..service.api import PredictRequest, QueryResponse


class ServerSaturated(ReproError):
    """The server's bounded queue is full; retry after backing off."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class _Group:
    """Requests waiting to be flushed for one ``(config, metric)`` model."""

    __slots__ = ("entries", "cells", "handle")

    def __init__(self):
        self.entries: list[tuple[PredictRequest, asyncio.Future]] = []
        self.cells = 0
        self.handle: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Coalesce concurrent predict requests into merged forward passes.

    All state is touched only from the event loop thread; the executor runs
    nothing but the service's ``query`` call.
    """

    def __init__(
        self,
        service,
        executor: Executor,
        *,
        window_ms: float = 5.0,
        max_batch: int = 256,
        max_pending: int = 4096,
        retry_after: float = 1.0,
    ):
        self._service = service
        self._executor = executor
        self.window_ms = float(window_ms)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        self.retry_after = float(retry_after)
        self._groups: dict[tuple[str, str], _Group] = {}
        self._pending_cells = 0
        self._inflight: set[asyncio.Task] = set()
        self._closed = False
        # Accounting surfaced via /v1/stats and the benchmark report.
        self.batches = 0
        self.requests = 0
        self.cells_predicted = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------ #
    async def submit(self, request: PredictRequest) -> QueryResponse:
        """Enqueue one predict request; resolves with this caller's slice."""
        if self._closed:
            raise ServerSaturated("server is draining", retry_after=self.retry_after)
        size = len(request.cells)
        if self._pending_cells and self._pending_cells + size > self.max_pending:
            raise ServerSaturated(
                f"predict queue is full ({self._pending_cells} cells pending, "
                f"bound {self.max_pending})",
                retry_after=self.retry_after,
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = (request.config_name, request.metric)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group()
        group.entries.append((request, future))
        group.cells += size
        self._pending_cells += size
        if self.window_ms <= 0 or group.cells >= self.max_batch:
            self._flush(key)
        elif group.handle is None:
            group.handle = loop.call_later(self.window_ms / 1e3, self._flush, key)
        return await future

    def _flush(self, key: tuple[str, str]) -> None:
        group = self._groups.pop(key, None)
        if group is None:
            return
        if group.handle is not None:
            group.handle.cancel()
        self._pending_cells -= group.cells
        task = asyncio.get_running_loop().create_task(self._run_batch(key, group))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, key: tuple[str, str], group: _Group) -> None:
        config_name, metric = key
        merged = PredictRequest(
            cells=tuple(cell for request, _ in group.entries for cell in request.cells),
            config_name=config_name,
            metric=metric,
        )
        loop = asyncio.get_running_loop()
        try:
            response = await loop.run_in_executor(
                self._executor, self._service.query, merged
            )
        except Exception as exc:
            for _, future in group.entries:
                if not future.done():
                    future.set_exception(exc)
            return
        self.batches += 1
        self.requests += len(group.entries)
        self.cells_predicted += group.cells
        self.largest_batch = max(self.largest_batch, len(group.entries))
        obs.observe("server.batch_size", len(group.entries))
        obs.count("server.batches")
        obs.count("server.batched_cells", group.cells)
        values = response.result["values"]
        offset = 0
        for request, future in group.entries:
            chunk = values[offset : offset + len(request.cells)]
            offset += len(request.cells)
            if not future.done():
                future.set_result(
                    QueryResponse(
                        kind=request.kind,
                        result={"values": chunk},
                        store_digest=response.store_digest,
                        served_from="model",
                    )
                )

    # ------------------------------------------------------------------ #
    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight batches to finish.

        New submissions are rejected (:class:`ServerSaturated`) from the
        moment drain starts.
        """
        self._closed = True
        for key in list(self._groups):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def stats(self) -> dict:
        """Batching counters for ``/v1/stats`` and the benchmark report."""
        return {
            "batches": self.batches,
            "requests": self.requests,
            "cells_predicted": self.cells_predicted,
            "largest_batch": self.largest_batch,
            "pending_cells": self._pending_cells,
            "window_ms": self.window_ms,
            "max_batch": self.max_batch,
            "requests_per_batch": round(self.requests / self.batches, 3)
            if self.batches
            else 0.0,
        }
