"""Async micro-batched query/prediction service over a warm store.

The serving layer of the repo (stdlib asyncio only — no new dependencies):
``python -m repro.server <store_dir>`` fronts a warm
:class:`~repro.service.query.SweepService` with a small HTTP API speaking
the typed wire format of :mod:`repro.service.api`.  Store-backed queries
sit behind an LRU hot-cache keyed by (store digest, canonical request);
concurrent predictions micro-batch into single packed forward passes;
saturation fails fast with 429/503 + ``Retry-After`` instead of unbounded
queues.  See DESIGN.md §13 for the architecture.

* :class:`SweepServer` / :class:`ServerConfig` — the asyncio front-end
  (:mod:`repro.server.app`);
* :class:`MicroBatcher` — predict coalescing (:mod:`repro.server.batching`);
* :class:`QueryCache` — the LRU hot-cache (:mod:`repro.server.cache`);
* :class:`ServiceClient` — the matching stdlib client
  (:mod:`repro.server.client`);
* :func:`build_service` — rebuild a servable service from a bare store
  directory (manifest-described stores need nothing else).
"""

from .app import ServerConfig, SweepServer
from .batching import MicroBatcher, ServerSaturated
from .cache import QueryCache
from .client import ServerBusy, ServerError, ServiceClient
from .protocol import HttpRequest, ProtocolError, encode_response, read_request


def build_service(store_dir, **kwargs):
    """See :func:`repro.server.__main__.build_service` (lazy to keep
    ``python -m repro.server`` runpy-clean)."""
    from .__main__ import build_service as _build_service

    return _build_service(store_dir, **kwargs)


__all__ = [
    "HttpRequest",
    "MicroBatcher",
    "ProtocolError",
    "QueryCache",
    "ServerBusy",
    "ServerConfig",
    "ServerError",
    "ServerSaturated",
    "ServiceClient",
    "SweepServer",
    "build_service",
    "encode_response",
    "read_request",
]
