"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough protocol for the query service: request-line + headers +
optional ``Content-Length`` body in, status + JSON body out, keep-alive by
default.  No chunked transfer, no TLS, no multipart — the server speaks to
:class:`repro.server.client.ServiceClient`, ``curl`` and load generators,
not to arbitrary browsers.  Malformed input raises :class:`ProtocolError`
carrying the HTTP status the connection handler should answer with before
closing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from ..errors import ReproError

#: Upper bound on the request head (request line + headers), in bytes.
MAX_HEAD_BYTES = 16 * 1024

#: Upper bound on a request body, in bytes (predict payloads are the largest).
MAX_BODY_BYTES = 8 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ReproError):
    """Malformed or oversized HTTP input; carries the status to answer with."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, split target, lowercase headers, raw body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> object:
        """Decode the body as JSON (``400`` on anything that is not JSON)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc

    def param(self, name: str) -> str:
        """A required query-string parameter (``400`` when missing)."""
        value = self.query.get(name)
        if value is None or value == "":
            raise ProtocolError(f"missing required query parameter {name!r}")
        return value


async def read_request(reader) -> HttpRequest | None:
    """Read one request off the stream; ``None`` on clean end-of-stream.

    Raises :class:`ProtocolError` (with an HTTP status) on malformed
    framing, an oversized head/body, or a connection cut mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except EOFError:
        return None
    except Exception as exc:  # IncompleteReadError / LimitOverrunError
        partial = getattr(exc, "partial", b"")
        if not partial:
            return None
        if len(partial) >= MAX_HEAD_BYTES or type(exc).__name__ == "LimitOverrunError":
            raise ProtocolError("request head too large", status=413) from exc
        raise ProtocolError("connection closed mid-request", status=400) from exc
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError("request head too large", status=413)
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("malformed request line") from exc
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query, keep_blank_values=True)}
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise ProtocolError(f"malformed Content-Length {raw_length!r}") from exc
        if length < 0:
            raise ProtocolError(f"malformed Content-Length {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise ProtocolError("request body too large", status=413)
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception as exc:
                raise ProtocolError("connection closed mid-body") from exc
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def encode_response(
    status: int,
    payload: object,
    *,
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Encode one JSON response (status line + headers + body) to bytes."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
