"""``python -m repro.server <store_dir>`` — serve a warm store over HTTP.

The store directory is self-describing: when it holds a sweep manifest
(written by :meth:`MeasurementStore.publish_manifest` /
``SweepManifest.save``), the population is rebuilt from the manifest's
embedded architectures and network configuration — the same standalone
rebuild a distributed :class:`SweepWorker` performs — so the server needs
nothing but the directory.  Without a manifest, ``--models``/``--seed``
regenerate the population the store was swept with (the generator is
deterministic per seed).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
from pathlib import Path
from typing import Sequence

from ..errors import ServiceError
from ..nasbench.dataset import NASBenchDataset
from ..nasbench.macro import MacroSpec
from ..service.query import SweepService
from ..service.queue import SweepManifest
from ..service.store import MeasurementStore
from .app import ServerConfig, SweepServer


def build_service(
    store_dir: str | Path,
    *,
    configs: Sequence[str] | None = None,
    manifest_digest: str | None = None,
    models: int | None = None,
    seed: int = 7,
) -> SweepService:
    """A warm :class:`SweepService` over *store_dir*, dataset rebuilt locally.

    Manifest-described stores need no further arguments; manifest-less
    stores fall back to regenerating ``--models`` cells with ``--seed``.
    """
    store_dir = Path(store_dir)
    manifest = None
    try:
        manifest = SweepManifest.find(store_dir, digest=manifest_digest)
    except ServiceError:
        if models is None:
            raise ServiceError(
                f"{store_dir} has no sweep manifest; pass --models/--seed to "
                "regenerate the population the store was swept with"
            ) from None
    if manifest is not None:
        archs = [
            arch
            for shard in range(manifest.num_shards)
            for arch in manifest.shard_archs(shard)
        ]
        network_config = manifest.network_config()
        if any(isinstance(arch, MacroSpec) for arch in archs):
            dataset = NASBenchDataset.from_macros(archs, network_config)
        else:
            dataset = NASBenchDataset.from_cells(archs, network_config)
        store = MeasurementStore(
            store_dir,
            shard_size=manifest.shard_size,
            enable_parameter_caching=manifest.enable_parameter_caching,
            prefix=manifest.prefix,
        )
        if configs is None:
            configs = [manifest.config(name) for name in manifest.config_names()]
    else:
        dataset = NASBenchDataset.generate(num_models=models, seed=seed)
        store = MeasurementStore(store_dir)
    return SweepService(store, dataset, configs=configs)


async def _serve(service: SweepService, config: ServerConfig) -> None:
    server = SweepServer(service, config)
    await server.start()
    print(
        f"repro.server: {len(service.dataset)} models x "
        f"{service.config_names} on http://{config.host}:{server.port} "
        f"(store {service.store_digest}); Ctrl-C to drain and stop"
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
    finally:
        print("repro.server: draining ...")
        await server.stop()
        print("repro.server: stopped")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description=(
            "Serve top-k/pareto/metric lookups and micro-batched predictions "
            "over a warm measurement store."
        ),
    )
    parser.add_argument("store_dir", help="measurement store directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787, help="0 = ephemeral")
    parser.add_argument(
        "--configs", nargs="*", default=None, help="configurations to serve"
    )
    parser.add_argument(
        "--manifest", default=None, help="manifest digest (if several)"
    )
    parser.add_argument(
        "--models",
        type=int,
        default=None,
        help="regenerate an N-model population (manifest-less stores)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--window-ms",
        type=float,
        default=5.0,
        help="predict micro-batch window (0 disables coalescing)",
    )
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--cache-size", type=int, default=256, help="0 disables")
    parser.add_argument("--max-inflight", type=int, default=128)
    args = parser.parse_args(argv)

    service = build_service(
        args.store_dir,
        configs=args.configs,
        manifest_digest=args.manifest,
        models=args.models,
        seed=args.seed,
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        cache_size=args.cache_size,
        max_inflight=args.max_inflight,
    )
    try:
        asyncio.run(_serve(service, config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
