"""Asyncio client for the query server (stdlib only).

:class:`ServiceClient` keeps one HTTP/1.1 connection alive and speaks the
typed wire format of :mod:`repro.service.api`: convenience methods build
the request variants, POST them to ``/v1/query``, and decode the
:class:`QueryResponse` envelope back — so a client-side answer is the same
object an in-process ``SweepService.query`` call would have produced.
Backpressure statuses (429/503) surface as :class:`ServerBusy` carrying the
server's ``Retry-After`` hint; other non-200 answers raise
:class:`ServerError` with the server's error message.

One client serializes its own requests (single connection); concurrency
comes from running many clients, as the load benchmark does.
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ReproError
from ..nasbench.cell import Cell
from ..service.api import (
    EnergyRequest,
    LatencyRequest,
    MetricRequest,
    ParetoRequest,
    PredictRequest,
    QueryRequest,
    QueryResponse,
    TopKRequest,
)
from .protocol import MAX_HEAD_BYTES


class ServerError(ReproError):
    """A non-200 answer from the server (the message is the server's)."""

    def __init__(self, message: str, status: int):
        super().__init__(message)
        self.status = status


class ServerBusy(ServerError):
    """429/503 backpressure answer; ``retry_after`` is the server's hint."""

    def __init__(self, message: str, status: int, retry_after: float):
        super().__init__(message, status)
        self.retry_after = retry_after


class ServiceClient:
    """One keep-alive connection to a :class:`~repro.server.app.SweepServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787):
        self.host = host
        self.port = int(port)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=MAX_HEAD_BYTES
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    # ------------------------------------------------------------------ #
    # Raw HTTP round-trip
    # ------------------------------------------------------------------ #
    async def request(
        self, method: str, path: str, payload: object | None = None
    ) -> tuple[int, dict[str, str], object]:
        """One round-trip: returns ``(status, headers, decoded JSON body)``."""
        async with self._lock:
            await self.connect()
            assert self._reader is not None and self._writer is not None
            body = b""
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Content-Type: application/json\r\n"
                "Connection: keep-alive\r\n\r\n"
            )
            self._writer.write(head.encode("latin-1") + body)
            await self._writer.drain()
            try:
                status, headers, raw = await self._read_response()
            except (ConnectionError, asyncio.IncompleteReadError, EOFError):
                # The server closed the connection (drain, restart); drop it
                # so the next call reconnects.
                await self.close()
                raise
            if headers.get("connection", "").lower() == "close":
                await self.close()
            return status, headers, json.loads(raw.decode("utf-8")) if raw else None

    async def _read_response(self) -> tuple[int, dict[str, str], bytes]:
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        return status, headers, body

    # ------------------------------------------------------------------ #
    # Typed API
    # ------------------------------------------------------------------ #
    async def query(self, request: QueryRequest) -> QueryResponse:
        """POST one typed request to ``/v1/query`` and decode the envelope."""
        status, headers, payload = await self.request(
            "POST", "/v1/query", request.to_dict()
        )
        if status in (429, 503):
            raise ServerBusy(
                (payload or {}).get("error", "server busy"),
                status,
                float(headers.get("retry-after", "1")),
            )
        if status != 200:
            raise ServerError(
                (payload or {}).get("error", f"server answered {status}"), status
            )
        return QueryResponse.from_dict(payload)

    async def top_k(self, k: int = 5) -> QueryResponse:
        return await self.query(TopKRequest(k=k))

    async def pareto(self, config_name: str, min_accuracy: float = 0.70) -> QueryResponse:
        return await self.query(ParetoRequest(config_name, min_accuracy))

    async def metric_of(
        self, fingerprint: str, config_name: str, metric: str = "latency"
    ) -> float | None:
        response = await self.query(MetricRequest(fingerprint, config_name, metric))
        return response.result["value"]

    async def latency_of(self, fingerprint: str, config_name: str) -> float:
        response = await self.query(LatencyRequest(fingerprint, config_name))
        return response.result["value"]

    async def energy_of(self, fingerprint: str, config_name: str) -> float | None:
        response = await self.query(EnergyRequest(fingerprint, config_name))
        return response.result["value"]

    async def predict(
        self, cells, config_name: str, metric: str = "latency"
    ) -> QueryResponse:
        cells = tuple(cells if isinstance(cells, (list, tuple)) else [cells])
        if cells and not isinstance(cells[0], Cell):
            raise ReproError("predict expects Cell instances")
        return await self.query(PredictRequest(cells, config_name, metric))

    async def stats(self) -> dict:
        status, _, payload = await self.request("GET", "/v1/stats")
        if status != 200:
            raise ServerError(f"stats endpoint answered {status}", status)
        return payload

    async def health(self) -> dict:
        status, _, payload = await self.request("GET", "/healthz")
        if status != 200:
            raise ServerError(f"health endpoint answered {status}", status)
        return payload
