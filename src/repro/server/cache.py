"""LRU hot-cache for query responses, keyed by content.

Keys come from :func:`repro.service.api.cache_key` — the canonical
(dict-order-invariant) request digest scoped by the serving store's content
digest — so a cached answer can only ever be returned for the exact same
question over the exact same measurements.  Hits are re-wrapped with
``served_from="cache"`` provenance; the cached entry itself is never
mutated.  Capacity 0 disables caching entirely (every lookup is a miss and
nothing is stored), which is also the configuration the equivalence tests
and the benchmark's cold legs run under.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace

from ..service.api import QueryResponse


class QueryCache:
    """Bounded LRU of :class:`QueryResponse` values with hit/miss accounting."""

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, QueryResponse] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> QueryResponse | None:
        """The cached response (re-tagged ``served_from="cache"``) or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return replace(entry, served_from="cache")

    def put(self, key: str, response: QueryResponse) -> None:
        """Insert (or refresh) one response; evicts the least recently used."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = response
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters for ``/v1/stats`` and the benchmark report."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
