"""repro — reproduction of "An Evaluation of Edge TPU Accelerators for CNNs".

The package is organized as:

* :mod:`repro.nasbench` — the NASBench-101-style workload substrate;
* :mod:`repro.arch` — Edge TPU accelerator configurations and cost models;
* :mod:`repro.compiler` — the ahead-of-time mapper with parameter caching;
* :mod:`repro.simulator` — the latency/energy performance model;
* :mod:`repro.core` — the graph-neural-network learned performance model;
* :mod:`repro.pipeline` — experiment orchestration (train/evaluate grids with caching);
* :mod:`repro.service` — resumable sharded measurement store and sweep query service;
* :mod:`repro.server` — async micro-batched HTTP serving over a warm store;
* :mod:`repro.search` — hardware-aware architecture search (evolution / predictor-guided);
* :mod:`repro.hwspace` — accelerator design-space exploration (grids, hardware Pareto, co-search);
* :mod:`repro.analysis` — the characterization study (tables and figures).

The most common entry points are re-exported here.
"""

from .arch import (
    EDGE_TPU_V1,
    EDGE_TPU_V2,
    EDGE_TPU_V3,
    STUDIED_CONFIGS,
    AcceleratorConfig,
    ConfigTable,
    get_config,
)
from .hwspace import (
    AcceleratorSpace,
    CoSearchEngine,
    CoSearchResult,
    CoSearchSpec,
    HardwareFrontier,
    SensitivityPoint,
)
from .analysis import ParetoArchive
from .core import (
    ArrayBackend,
    GraphTable,
    LearnedPerformanceModel,
    TrainingSettings,
    available_backends,
    get_backend,
    use_backend,
)
from .errors import (
    BackendError,
    CompilationError,
    DatasetError,
    InvalidCellError,
    InvalidConfigError,
    ModelError,
    PipelineError,
    ReproError,
    SearchError,
    ServiceError,
    SimulationError,
)
from .nasbench import (
    Cell,
    LayerTable,
    NASBenchDataset,
    NetworkConfig,
    build_network,
    cell_fingerprint,
    mutate_cell,
    sample_unique_cells,
)
from .pipeline import (
    Experiment,
    ExperimentResult,
    HardwareSweepExperiment,
    HardwareSweepResult,
    PopulationSpec,
    SearchExperiment,
    SearchExperimentResult,
    run_experiment,
    run_hardware_sweep,
    run_search_experiment,
)
from .search import SearchEngine, SearchResult, SearchSpec
from .service import (
    MeasurementStore,
    MetricRequest,
    ParetoRequest,
    PredictRequest,
    QueryResponse,
    StoreStats,
    SweepService,
    TopKRequest,
)
from .simulator import (
    BatchSimulator,
    FusedGridResult,
    MeasurementSet,
    PerformanceSimulator,
    compile_and_time_table,
    evaluate_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "AcceleratorConfig",
    "AcceleratorSpace",
    "ArrayBackend",
    "BackendError",
    "BatchSimulator",
    "Cell",
    "CoSearchEngine",
    "CoSearchResult",
    "CoSearchSpec",
    "CompilationError",
    "ConfigTable",
    "DatasetError",
    "EDGE_TPU_V1",
    "EDGE_TPU_V2",
    "EDGE_TPU_V3",
    "Experiment",
    "ExperimentResult",
    "FusedGridResult",
    "GraphTable",
    "HardwareFrontier",
    "HardwareSweepExperiment",
    "HardwareSweepResult",
    "InvalidCellError",
    "InvalidConfigError",
    "LayerTable",
    "LearnedPerformanceModel",
    "MeasurementSet",
    "MeasurementStore",
    "MetricRequest",
    "ModelError",
    "NASBenchDataset",
    "NetworkConfig",
    "ParetoArchive",
    "ParetoRequest",
    "PerformanceSimulator",
    "PipelineError",
    "PopulationSpec",
    "PredictRequest",
    "QueryResponse",
    "ReproError",
    "STUDIED_CONFIGS",
    "SearchEngine",
    "SearchError",
    "SearchExperiment",
    "SearchExperimentResult",
    "SearchResult",
    "SearchSpec",
    "SensitivityPoint",
    "ServerConfig",
    "ServiceClient",
    "ServiceError",
    "SimulationError",
    "StoreStats",
    "SweepCoordinator",
    "SweepManifest",
    "SweepServer",
    "SweepService",
    "SweepWorker",
    "TopKRequest",
    "TrainingSettings",
    "available_backends",
    "build_network",
    "cell_fingerprint",
    "compile_and_time_table",
    "evaluate_dataset",
    "get_backend",
    "get_config",
    "mutate_cell",
    "obs",
    "run_experiment",
    "run_hardware_sweep",
    "run_search_experiment",
    "sample_unique_cells",
    "trace_summary",
    "use_backend",
    "__version__",
]


def __getattr__(name: str):
    # Lazily resolved so ``python -m repro.service.worker`` (and ``.queue``,
    # ``.obs``, ``.server``) run those modules as ``__main__`` without being
    # pre-imported here.
    if name in ("SweepCoordinator", "SweepManifest", "SweepWorker"):
        from . import service

        return getattr(service, name)
    if name in ("SweepServer", "ServerConfig", "ServiceClient"):
        from . import server

        return getattr(server, name)
    if name in ("obs", "trace_summary"):
        from . import obs

        return obs if name == "obs" else obs.trace_summary
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
