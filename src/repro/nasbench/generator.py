"""Generation of the NASBench-101 cell space.

Two entry points are provided:

* :func:`enumerate_cells` walks the complete space of valid cells up to a
  vertex/edge limit, de-duplicating by graph-isomorphism fingerprint exactly
  like NASBench-101 does.  Exhaustive enumeration of the full 7-vertex /
  9-edge space (423,624 unique cells) is possible but slow in pure Python, so
  it is primarily used for small vertex counts in tests.
* :func:`sample_unique_cells` draws unique cells uniformly-ish at random from
  the same space.  This is what the benchmark harness uses: the paper's
  distributional results are reproduced on a stratified sample instead of the
  full population (see DESIGN.md §2).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import DatasetError
from .cell import Cell
from .ops import INPUT, INTERIOR_OPS, MAX_EDGES, MAX_VERTICES, OUTPUT


def _matrix_from_edge_mask(num_vertices: int, mask: int) -> np.ndarray:
    """Build an upper-triangular adjacency matrix from a bitmask over edges."""
    matrix = np.zeros((num_vertices, num_vertices), dtype=np.int8)
    bit = 0
    for i in range(num_vertices):
        for j in range(i + 1, num_vertices):
            if mask >> bit & 1:
                matrix[i, j] = 1
            bit += 1
    return matrix


def _is_pruned_form(matrix: np.ndarray) -> bool:
    """Return True if every vertex lies on some input-to-output path.

    Enumeration only labels matrices already in pruned form; cells whose
    pruned form is smaller are produced by the enumeration at the smaller
    vertex count, so emitting them here would only create duplicates.
    """
    n = matrix.shape[0]
    reach_fwd = np.zeros(n, dtype=bool)
    reach_fwd[0] = True
    for v in range(n):
        if reach_fwd[v]:
            reach_fwd |= matrix[v, :].astype(bool)
    reach_bwd = np.zeros(n, dtype=bool)
    reach_bwd[n - 1] = True
    for v in range(n - 1, -1, -1):
        if reach_bwd[v]:
            reach_bwd |= matrix[:, v].astype(bool)
    return bool((reach_fwd & reach_bwd).all())


def enumerate_cells(
    max_vertices: int = MAX_VERTICES,
    max_edges: int = MAX_EDGES,
    interior_ops: Sequence[str] = INTERIOR_OPS,
) -> Iterator[Cell]:
    """Yield every unique cell with at most *max_vertices* and *max_edges*.

    Uniqueness follows NASBench-101: two cells are the same model when their
    pruned, operation-labelled graphs are isomorphic.  Cells are yielded in a
    deterministic order (increasing vertex count, then edge-mask order, then
    labelling order).
    """
    if max_vertices < 2 or max_vertices > MAX_VERTICES:
        raise DatasetError(f"max_vertices must be in [2, {MAX_VERTICES}], got {max_vertices}")
    if max_edges < 1 or max_edges > MAX_EDGES:
        raise DatasetError(f"max_edges must be in [1, {MAX_EDGES}], got {max_edges}")

    seen: set[str] = set()
    for num_vertices in range(2, max_vertices + 1):
        num_slots = num_vertices * (num_vertices - 1) // 2
        num_interior = num_vertices - 2
        for mask in range(1, 1 << num_slots):
            if bin(mask).count("1") > max_edges:
                continue
            matrix = _matrix_from_edge_mask(num_vertices, mask)
            if not _is_pruned_form(matrix):
                continue
            # Labelings are iterated lazily (re-generated per matrix) instead
            # of materializing the full 3^(n-2) product up front.
            for labeling in itertools.product(interior_ops, repeat=num_interior):
                ops = (INPUT, *labeling, OUTPUT)
                cell = Cell(matrix, ops)
                if cell.fingerprint in seen:
                    continue
                seen.add(cell.fingerprint)
                yield cell


def count_unique_cells(max_vertices: int, max_edges: int = MAX_EDGES) -> int:
    """Count the unique cells in a (small) sub-space; used by tests."""
    return sum(1 for _ in enumerate_cells(max_vertices, max_edges))


def random_cell(
    rng: np.random.Generator,
    max_vertices: int = MAX_VERTICES,
    max_edges: int = MAX_EDGES,
    interior_ops: Sequence[str] = INTERIOR_OPS,
    max_attempts: int = 200,
) -> Cell:
    """Draw one random valid cell (already pruned).

    Vertex counts are biased towards the maximum because the overwhelming
    majority of unique NASBench cells use all seven vertices; the edge count
    is drawn uniformly between a spanning path and the edge budget.
    """
    vertex_choices = list(range(3, max_vertices + 1))
    # Weight ~ 4^(n) so most samples use many vertices, as in the real space.
    weights = np.array([4.0**n for n in vertex_choices])
    weights /= weights.sum()

    for _ in range(max_attempts):
        num_vertices = int(rng.choice(vertex_choices, p=weights))
        num_slots = num_vertices * (num_vertices - 1) // 2
        max_usable_edges = min(max_edges, num_slots)
        min_edges = num_vertices - 1
        if min_edges > max_usable_edges:
            continue
        num_edges = int(rng.integers(min_edges, max_usable_edges + 1))
        slots = list(itertools.combinations(range(num_vertices), 2))
        chosen = rng.choice(len(slots), size=num_edges, replace=False)
        matrix = np.zeros((num_vertices, num_vertices), dtype=np.int8)
        for index in chosen:
            i, j = slots[int(index)]
            matrix[i, j] = 1
        ops = (
            INPUT,
            *(str(rng.choice(interior_ops)) for _ in range(num_vertices - 2)),
            OUTPUT,
        )
        cell = Cell(matrix, ops)
        if not cell.is_valid():
            continue
        pruned = cell.prune()
        if pruned.num_vertices < 2:
            continue
        return pruned

    raise DatasetError(f"failed to draw a valid random cell after {max_attempts} attempts")


def sample_unique_cells(
    count: int,
    seed: int = 0,
    max_vertices: int = MAX_VERTICES,
    max_edges: int = MAX_EDGES,
    interior_ops: Sequence[str] = INTERIOR_OPS,
    extra_cells: Iterable[Cell] = (),
) -> list[Cell]:
    """Draw *count* unique cells (by isomorphism fingerprint) at random.

    Parameters
    ----------
    count:
        Number of unique cells to return.
    seed:
        Seed of the pseudo-random generator; the same seed always produces
        the same list of cells.
    extra_cells:
        Cells that must be part of the sample (for example the paper's named
        Figure 7/8 cells); they count towards *count* and are de-duplicated
        against the random draws.
    """
    if count <= 0:
        raise DatasetError("count must be positive")
    rng = np.random.default_rng(seed)
    cells: list[Cell] = []
    seen: set[str] = set()

    for cell in extra_cells:
        pruned = cell.prune()
        if pruned.fingerprint not in seen:
            seen.add(pruned.fingerprint)
            cells.append(pruned)

    attempts = 0
    max_total_attempts = max(10_000, count * 60)
    while len(cells) < count:
        attempts += 1
        if attempts > max_total_attempts:
            raise DatasetError(
                f"could only draw {len(cells)} unique cells out of the requested "
                f"{count} after {attempts} attempts; the requested sample may be "
                "larger than the sub-space"
            )
        cell = random_cell(rng, max_vertices, max_edges, interior_ops)
        if cell.fingerprint in seen:
            continue
        seen.add(cell.fingerprint)
        cells.append(cell)

    return cells[:count]
