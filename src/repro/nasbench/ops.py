"""Operation vocabulary of the NASBench-101 cell space.

The cell search space used by the paper (Section 5, "Workloads") admits three
interior operations plus the distinguished input and output vertices.  This
module centralizes their string labels, the numeric encodings used by the
learned performance model (Figure 4 of the paper), and a few helpers shared by
the rest of the :mod:`repro.nasbench` package.
"""

from __future__ import annotations

from typing import Sequence

# Distinguished vertices.
INPUT = "input"
OUTPUT = "output"

# Interior operations (the only valid choices for non-terminal vertices).
CONV3X3 = "conv3x3-bn-relu"
CONV1X1 = "conv1x1-bn-relu"
MAXPOOL3X3 = "maxpool3x3"

#: Operations allowed on interior vertices, in canonical order.
INTERIOR_OPS: tuple[str, ...] = (CONV3X3, CONV1X1, MAXPOOL3X3)

#: Every label that may appear in a cell's op list.
ALL_OPS: tuple[str, ...] = (INPUT, CONV3X3, CONV1X1, MAXPOOL3X3, OUTPUT)

#: Float encoding used as the node feature of the learned performance model
#: (paper Figure 4): input -> 1.0, conv3x3 -> 2.0, maxpool3x3 -> 3.0,
#: conv1x1 -> 4.0, output -> 5.0.
NODE_FEATURE_ENCODING: dict[str, float] = {
    INPUT: 1.0,
    CONV3X3: 2.0,
    MAXPOOL3X3: 3.0,
    CONV1X1: 4.0,
    OUTPUT: 5.0,
}

#: Integer codes used by the graph-isomorphism hash.  The particular values do
#: not matter as long as they are distinct and stable.
HASH_ENCODING: dict[str, int] = {
    INPUT: -1,
    OUTPUT: -2,
    CONV3X3: 0,
    CONV1X1: 1,
    MAXPOOL3X3: 2,
}

# NASBench-101 search-space limits (Section 5 of the paper).
MAX_VERTICES = 7
MAX_EDGES = 9


def is_interior_op(op: str) -> bool:
    """Return ``True`` if *op* is a valid interior (non-terminal) operation."""
    return op in INTERIOR_OPS


def validate_ops(ops: Sequence[str]) -> None:
    """Validate a cell op list, raising :class:`ValueError` on bad labels.

    The op list must start with :data:`INPUT`, end with :data:`OUTPUT`, and
    contain only interior operations in between.  Structural constraints
    (vertex/edge counts, acyclicity) are validated by
    :class:`repro.nasbench.cell.Cell`.
    """
    if len(ops) < 2:
        raise ValueError("a cell needs at least an input and an output vertex")
    if ops[0] != INPUT:
        raise ValueError(f"first op must be {INPUT!r}, got {ops[0]!r}")
    if ops[-1] != OUTPUT:
        raise ValueError(f"last op must be {OUTPUT!r}, got {ops[-1]!r}")
    for op in ops[1:-1]:
        if not is_interior_op(op):
            raise ValueError(f"invalid interior operation {op!r}")


def node_feature(op: str) -> float:
    """Return the scalar node feature of *op* used by the learned model."""
    try:
        return NODE_FEATURE_ENCODING[op]
    except KeyError as exc:
        raise ValueError(f"unknown operation {op!r}") from exc


def node_features(ops: Sequence[str]) -> list[float]:
    """Node features of an op list, in vertex order (batch featurization)."""
    return [node_feature(op) for op in ops]
