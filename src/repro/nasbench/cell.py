"""Cell representation for the NASBench-101 model space.

A *cell* is a directed acyclic graph (DAG) whose first vertex is the cell
input, whose last vertex is the cell output, and whose interior vertices each
carry one of the three valid operations (3x3 convolution, 1x1 convolution, or
3x3 max-pooling).  The NASBench-101 space restricts cells to at most seven
vertices and nine edges.

The class in this module stores the upper-triangular adjacency matrix and the
operation labels, validates the structural constraints, and implements the
same *pruning* rule NASBench-101 applies: vertices that are not on any path
from the input to the output do not affect the computed function and are
removed before hashing or expanding the cell into a full network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..errors import InvalidCellError
from . import ops as op_vocab
from .ops import MAX_EDGES, MAX_VERTICES


def _as_matrix(matrix: Iterable[Iterable[int]]) -> np.ndarray:
    array = np.asarray(matrix, dtype=np.int8)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise InvalidCellError(f"adjacency matrix must be square, got shape {array.shape}")
    return array


@dataclass(frozen=True, eq=False)
class Cell:
    """An immutable NASBench-101 cell.

    Parameters
    ----------
    matrix:
        Square 0/1 adjacency matrix.  ``matrix[i][j] == 1`` means there is a
        directed edge from vertex ``i`` to vertex ``j``.  The matrix must be
        strictly upper triangular (vertices are in topological order), which
        also guarantees acyclicity.
    ops:
        Operation label per vertex.  ``ops[0]`` must be ``"input"`` and
        ``ops[-1]`` must be ``"output"``.

    Notes
    -----
    Instances are validated on construction and are hashable.  Equality and
    hashing follow NASBench-101's notion of "the same model": two cells
    compare equal iff their pruned, operation-labelled graphs are isomorphic
    (the :attr:`fingerprint` of each is computed once and cached), so sets and
    dicts of cells de-duplicate by model identity without callers maintaining
    fingerprint maps.
    """

    matrix: tuple[tuple[int, ...], ...]
    ops: tuple[str, ...]
    _np_matrix: np.ndarray = field(init=False, repr=False, compare=False)
    _fingerprint: str | None = field(init=False, repr=False, compare=False)

    def __init__(self, matrix: Iterable[Iterable[int]], ops: Sequence[str]):
        array = _as_matrix(matrix)
        object.__setattr__(self, "matrix", tuple(tuple(int(v) for v in row) for row in array))
        object.__setattr__(self, "ops", tuple(ops))
        object.__setattr__(self, "_np_matrix", array)
        object.__setattr__(self, "_fingerprint", None)
        self._validate()

    # ------------------------------------------------------------------ #
    # Model identity
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """Canonical (pruned) isomorphism fingerprint, computed once per cell.

        Disconnected cells (constructible, but with no input-to-output path —
        the population :meth:`is_valid` screens out) have no pruned canonical
        form; they fall back to the unpruned structural hash so equality,
        hashing and set membership never raise.  The fallback cannot collide
        with a connected cell's fingerprint: isomorphic labelled graphs are
        either both connected or both disconnected.
        """
        if self._fingerprint is None:
            from .hashing import cell_fingerprint  # deferred: hashing imports Cell

            try:
                value = cell_fingerprint(self)
            except InvalidCellError:
                value = cell_fingerprint(self, prune=False)
            object.__setattr__(self, "_fingerprint", value)
        return self._fingerprint

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cell):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        array = self._np_matrix
        num_vertices = array.shape[0]
        if num_vertices != len(self.ops):
            raise InvalidCellError(
                f"matrix has {num_vertices} vertices but {len(self.ops)} ops were given"
            )
        if num_vertices < 2:
            raise InvalidCellError("a cell needs at least an input and an output vertex")
        if num_vertices > MAX_VERTICES:
            raise InvalidCellError(
                f"cell has {num_vertices} vertices, the maximum is {MAX_VERTICES}"
            )
        if not np.isin(array, (0, 1)).all():
            raise InvalidCellError("adjacency matrix entries must be 0 or 1")
        if np.any(np.tril(array) != 0):
            raise InvalidCellError(
                "adjacency matrix must be strictly upper triangular "
                "(vertices in topological order)"
            )
        if int(array.sum()) > MAX_EDGES:
            raise InvalidCellError(f"cell has {int(array.sum())} edges, the maximum is {MAX_EDGES}")
        try:
            op_vocab.validate_ops(self.ops)
        except ValueError as exc:
            raise InvalidCellError(str(exc)) from exc

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices, including the input and output vertices."""
        return len(self.ops)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self._np_matrix.sum())

    @property
    def interior_ops(self) -> tuple[str, ...]:
        """Operation labels of the interior (non input/output) vertices."""
        return self.ops[1:-1]

    def numpy_matrix(self) -> np.ndarray:
        """Return a copy of the adjacency matrix as a numpy ``int8`` array."""
        return self._np_matrix.copy()

    def edges(self) -> list[tuple[int, int]]:
        """Return the directed edges as ``(src, dst)`` vertex-index pairs."""
        src, dst = np.nonzero(self._np_matrix)
        return list(zip(src.tolist(), dst.tolist()))

    def op_count(self, op: str) -> int:
        """Return how many interior vertices carry operation *op*."""
        return sum(1 for o in self.interior_ops if o == op)

    def in_degree(self, vertex: int) -> int:
        """Number of incoming edges of *vertex*."""
        return int(self._np_matrix[:, vertex].sum())

    def out_degree(self, vertex: int) -> int:
        """Number of outgoing edges of *vertex*."""
        return int(self._np_matrix[vertex, :].sum())

    # ------------------------------------------------------------------ #
    # Connectivity and pruning
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """Return ``True`` if there is a directed path from input to output."""
        return bool(self._reachable_from_input()[-1])

    def _reachable_from_input(self) -> np.ndarray:
        """Boolean vector: vertex reachable from the input vertex."""
        n = self.num_vertices
        reach = np.zeros(n, dtype=bool)
        reach[0] = True
        # Vertices are topologically ordered, so one forward sweep suffices.
        for v in range(n):
            if reach[v]:
                reach |= self._np_matrix[v, :].astype(bool)
        return reach

    def _reaches_output(self) -> np.ndarray:
        """Boolean vector: output vertex reachable from each vertex."""
        n = self.num_vertices
        reach = np.zeros(n, dtype=bool)
        reach[n - 1] = True
        for v in range(n - 1, -1, -1):
            if reach[v]:
                reach |= self._np_matrix[:, v].astype(bool)
        return reach

    def prune(self) -> "Cell":
        """Return a cell with all extraneous vertices removed.

        A vertex is *extraneous* if it is not on any directed path from the
        input vertex to the output vertex; such vertices cannot influence the
        cell's output and NASBench-101 removes them before de-duplication.

        Raises
        ------
        InvalidCellError
            If the input cannot reach the output at all (the pruned graph
            would be disconnected and the cell does not represent a valid
            network).
        """
        keep = self._reachable_from_input() & self._reaches_output()
        if not keep[0] or not keep[-1]:
            raise InvalidCellError("cell has no path from input to output")
        if keep.all():
            return self
        indices = np.nonzero(keep)[0]
        sub_matrix = self._np_matrix[np.ix_(indices, indices)]
        sub_ops = [self.ops[i] for i in indices]
        return Cell(sub_matrix, sub_ops)

    def is_valid(self) -> bool:
        """Return ``True`` if the cell is connected (input reaches output)."""
        try:
            self.prune()
        except InvalidCellError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Graph metrics used throughout the paper
    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        """Length (in edges) of the longest input-to-output path.

        This matches the "graph depth" definition used by the paper and by
        NASBench-101: the number of edges on the longest directed path from
        the input vertex to the output vertex.
        """
        n = self.num_vertices
        dist = np.full(n, -np.inf)
        dist[0] = 0
        for v in range(n):
            if dist[v] == -np.inf:
                continue
            for w in range(v + 1, n):
                if self._np_matrix[v, w]:
                    dist[w] = max(dist[w], dist[v] + 1)
        if dist[n - 1] == -np.inf:
            raise InvalidCellError("cell has no path from input to output")
        return int(dist[n - 1])

    def width(self) -> int:
        """Maximum directed cut of the graph ("graph width" in the paper).

        Vertices are topologically ordered, so every directed cut corresponds
        to a split position ``k`` separating vertices ``0..k`` from
        ``k+1..n-1``; the width is the maximum number of edges crossing any
        such split.
        """
        n = self.num_vertices
        best = 0
        for split in range(n - 1):
            crossing = int(self._np_matrix[: split + 1, split + 1 :].sum())
            best = max(best, crossing)
        return best

    # ------------------------------------------------------------------ #
    # Serialization helpers
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Return a JSON-serializable description of the cell."""
        return {"matrix": [list(row) for row in self.matrix], "ops": list(self.ops)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Cell":
        """Reconstruct a cell from :meth:`to_dict` output."""
        return cls(payload["matrix"], payload["ops"])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(self.ops)
        return f"Cell(vertices={self.num_vertices}, edges={self.num_edges}, ops=[{ops}])"
