"""Trainable-parameter counting for NASBench networks.

The paper uses the number of trainable parameters as its primary proxy for
model size (Table 1, Table 6, Table 7, Figure 14).  Counting is delegated to
the expanded :class:`~repro.nasbench.network.NetworkSpec`, so the number can
never disagree with what the simulator sees; this module adds convenience
wrappers and the interval-histogram helper used to regenerate Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .cell import Cell
from .network import NetworkConfig, NetworkSpec, build_network


def count_parameters(cell: Cell, config: NetworkConfig | None = None) -> int:
    """Return the number of trainable parameters of the network built from *cell*."""
    return build_network(cell, config).trainable_parameters


def count_parameters_from_spec(spec: NetworkSpec) -> int:
    """Return the number of trainable parameters of an already-expanded network."""
    return spec.trainable_parameters


@dataclass(frozen=True)
class ParameterInterval:
    """One row of the Table 1 histogram: a half-open parameter interval."""

    lower: int
    upper: int
    count: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lower:,} — {self.upper:,}): {self.count} models"


def parameter_distribution(
    parameter_counts: Iterable[int],
    num_intervals: int = 10,
    bounds: tuple[int, int] | None = None,
) -> list[ParameterInterval]:
    """Histogram parameter counts into equal-width half-open intervals.

    This regenerates the structure of Table 1 of the paper: the population of
    models split into ``num_intervals`` equally wide trainable-parameter
    intervals.  When *bounds* is omitted the minimum and maximum of the data
    are used (as the paper does with 227,274 and 49,979,274).
    """
    counts: Sequence[int] = sorted(parameter_counts)
    if not counts:
        return []
    lower_bound, upper_bound = bounds if bounds is not None else (counts[0], counts[-1])
    if upper_bound <= lower_bound:
        return [ParameterInterval(lower_bound, upper_bound + 1, len(counts))]

    width = (upper_bound - lower_bound) / num_intervals
    intervals: list[ParameterInterval] = []
    for index in range(num_intervals):
        low = lower_bound + index * width
        high = lower_bound + (index + 1) * width
        if index == num_intervals - 1:
            # The final interval is closed on the right so the maximum lands in it.
            in_interval = sum(1 for value in counts if low <= value <= high)
        else:
            in_interval = sum(1 for value in counts if low <= value < high)
        intervals.append(ParameterInterval(int(round(low)), int(round(high)), in_interval))
    return intervals
