"""Graph-structure metrics used by the paper's characterization study.

The paper repeatedly slices its results by structural properties of the
NASBench cell: the number of each operation type (Figure 12, Table 6), the
graph depth — longest input-to-output path — (Figures 10/11, Table 7), and the
graph width — maximum directed cut — (Figures 10/11).  This module computes
all of them in one pass and returns a plain dataclass that the analysis and
benchmark code can aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cell import Cell
from .ops import CONV1X1, CONV3X3, MAXPOOL3X3


@dataclass(frozen=True)
class CellMetrics:
    """Structural metrics of a (pruned) NASBench cell.

    Attributes
    ----------
    num_vertices / num_edges:
        Size of the pruned cell graph, including input and output vertices.
    num_conv3x3 / num_conv1x1 / num_maxpool3x3:
        Interior-operation counts.
    depth:
        Longest input-to-output path length in edges (paper's "graph depth").
    width:
        Maximum directed cut of the graph (paper's "graph width").
    """

    num_vertices: int
    num_edges: int
    num_conv3x3: int
    num_conv1x1: int
    num_maxpool3x3: int
    depth: int
    width: int

    @property
    def num_operations(self) -> int:
        """Total number of interior operations in the cell."""
        return self.num_conv3x3 + self.num_conv1x1 + self.num_maxpool3x3


def compute_metrics(cell: Cell, prune: bool = True) -> CellMetrics:
    """Compute :class:`CellMetrics` for *cell*.

    Parameters
    ----------
    cell:
        The cell to measure.
    prune:
        When ``True`` (the default, and what the paper's dataset does) the
        metrics are computed on the pruned cell so extraneous vertices do not
        inflate operation counts.
    """
    canonical = cell.prune() if prune else cell
    return CellMetrics(
        num_vertices=canonical.num_vertices,
        num_edges=canonical.num_edges,
        num_conv3x3=canonical.op_count(CONV3X3),
        num_conv1x1=canonical.op_count(CONV1X1),
        num_maxpool3x3=canonical.op_count(MAXPOOL3X3),
        depth=canonical.depth(),
        width=canonical.width(),
    )
