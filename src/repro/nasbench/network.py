"""Expansion of a NASBench cell into a full convolutional network.

NASBench-101 evaluates each cell inside a fixed macro-architecture on
CIFAR-10: a 3x3 convolution stem with 128 output channels, followed by three
stacks of three cells each, with a 2x2 max-pool downsampling layer between
stacks (halving the spatial resolution and doubling the channel count), and a
global-average-pool plus dense classifier head.  Channel counts inside a cell
follow NASBench's ``compute_vertex_channels`` rule, and every edge leaving the
cell-input vertex passes through a 1x1 projection convolution.

This module reproduces that expansion and emits a flat, topologically ordered
list of :class:`LayerSpec` records.  The layer list is the single source of
truth for both the parameter counting in :mod:`repro.nasbench.params` and the
Edge TPU compiler/simulator in :mod:`repro.compiler` / :mod:`repro.simulator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..errors import InvalidCellError
from .cell import Cell
from .ops import CONV1X1, CONV3X3, MAXPOOL3X3

# Layer kinds emitted by the expansion.
KIND_CONV = "conv"
KIND_PROJECTION = "projection"  # 1x1 convolution inserted on edges from the cell input
KIND_MAXPOOL = "maxpool"
KIND_DOWNSAMPLE = "downsample"  # 2x2/stride-2 max-pool between stacks
KIND_ADD = "add"
KIND_CONCAT = "concat"
KIND_GLOBAL_POOL = "global_pool"
KIND_DENSE = "dense"

#: Layer kinds that carry trainable weights.
WEIGHTED_KINDS = frozenset({KIND_CONV, KIND_PROJECTION, KIND_DENSE})


@dataclass(frozen=True)
class LayerSpec:
    """A single operation of the expanded network.

    The record carries enough shape information for parameter counting and
    for the accelerator cost model: spatial input size, channel counts,
    kernel size and stride.  Quantities such as MAC count and weight bytes are
    derived properties so they can never drift out of sync with the shapes.
    """

    name: str
    kind: str
    input_height: int
    input_width: int
    in_channels: int
    out_channels: int
    kernel_size: int = 1
    stride: int = 1
    has_batch_norm: bool = False

    # ------------------------------------------------------------------ #
    # Shape arithmetic
    # ------------------------------------------------------------------ #
    @property
    def output_height(self) -> int:
        """Output spatial height (SAME padding semantics)."""
        if self.kind in (KIND_GLOBAL_POOL, KIND_DENSE):
            return 1
        return math.ceil(self.input_height / self.stride)

    @property
    def output_width(self) -> int:
        """Output spatial width (SAME padding semantics)."""
        if self.kind in (KIND_GLOBAL_POOL, KIND_DENSE):
            return 1
        return math.ceil(self.input_width / self.stride)

    # ------------------------------------------------------------------ #
    # Cost-model quantities
    # ------------------------------------------------------------------ #
    @property
    def macs(self) -> int:
        """Multiply-accumulate operations performed by this layer."""
        if self.kind in (KIND_CONV, KIND_PROJECTION):
            return (
                self.kernel_size
                * self.kernel_size
                * self.in_channels
                * self.out_channels
                * self.output_height
                * self.output_width
            )
        if self.kind == KIND_DENSE:
            return self.in_channels * self.out_channels
        return 0

    @property
    def trainable_parameters(self) -> int:
        """Trainable parameters, matching the training-time model.

        Convolutions carry ``k*k*in*out`` kernel weights plus 2 batch-norm
        parameters per output channel (scale and offset); the dense classifier
        carries weights plus biases; pooling and element-wise layers have no
        parameters.
        """
        if self.kind in (KIND_CONV, KIND_PROJECTION):
            kernel = self.kernel_size * self.kernel_size * self.in_channels * self.out_channels
            norm = 2 * self.out_channels if self.has_batch_norm else 0
            return kernel + norm
        if self.kind == KIND_DENSE:
            return self.in_channels * self.out_channels + self.out_channels
        return 0

    @property
    def weight_bytes(self) -> int:
        """Inference-time weight footprint in bytes (int8 quantized).

        Batch-norm is folded into the convolution at inference time (as the
        Edge TPU compiler does), leaving one int8 weight per kernel element
        and one int32 bias per output channel.
        """
        if self.kind in (KIND_CONV, KIND_PROJECTION):
            kernel = self.kernel_size * self.kernel_size * self.in_channels * self.out_channels
            return kernel + 4 * self.out_channels
        if self.kind == KIND_DENSE:
            return self.in_channels * self.out_channels + 4 * self.out_channels
        return 0

    @property
    def input_activation_bytes(self) -> int:
        """Input activation footprint in bytes (int8 quantized)."""
        return self.input_height * self.input_width * self.in_channels

    @property
    def output_activation_bytes(self) -> int:
        """Output activation footprint in bytes (int8 quantized)."""
        return self.output_height * self.output_width * self.out_channels

    @property
    def is_weighted(self) -> bool:
        """``True`` when the layer carries weights that must be fetched."""
        return self.kind in WEIGHTED_KINDS


@dataclass(frozen=True)
class NetworkConfig:
    """Macro-architecture settings of the NASBench-101 CIFAR-10 network."""

    stem_channels: int = 128
    num_stacks: int = 3
    cells_per_stack: int = 3
    image_size: int = 32
    image_channels: int = 3
    num_classes: int = 10

    def __post_init__(self) -> None:
        for name in (
            "stem_channels",
            "num_stacks",
            "cells_per_stack",
            "image_size",
            "image_channels",
            "num_classes",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise InvalidCellError(
                    f"network configuration field {name} must be an integer, got {value!r}"
                )
            if value <= 0:
                raise InvalidCellError(
                    f"network configuration field {name} must be positive, got {value}"
                )
        if self.image_size < 2 ** (self.num_stacks - 1):
            raise InvalidCellError(
                "image size too small for the requested number of downsampling stages"
            )


@dataclass(frozen=True)
class NetworkSpec:
    """A fully expanded network: the cell, the macro config, and all layers."""

    cell: Cell
    config: NetworkConfig
    layers: tuple[LayerSpec, ...] = field(repr=False)

    @property
    def trainable_parameters(self) -> int:
        """Total trainable parameters of the network."""
        return sum(layer.trainable_parameters for layer in self.layers)

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulate operations of one inference."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        """Total inference-time weight footprint in bytes."""
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def num_layers(self) -> int:
        """Number of emitted layer records (including add/concat glue)."""
        return len(self.layers)

    def weighted_layers(self) -> list[LayerSpec]:
        """Return only layers that carry weights (convolutions and dense)."""
        return [layer for layer in self.layers if layer.is_weighted]

    def to_layer_table(self):
        """Flatten this network into a single-model :class:`LayerTable`.

        The table is the structure-of-arrays form consumed by the vectorized
        compiler/simulator kernels (see :mod:`repro.nasbench.layer_table`).
        """
        from .layer_table import LayerTable

        return LayerTable.from_specs(self.layers)


# ---------------------------------------------------------------------- #
# Channel inference (NASBench-101 ``compute_vertex_channels``)
# ---------------------------------------------------------------------- #
def compute_vertex_channels(
    input_channels: int, output_channels: int, matrix: np.ndarray
) -> list[int]:
    """Compute per-vertex channel counts for a pruned cell.

    The rule follows NASBench-101: vertices with a direct edge to the output
    split the output channel count evenly (earlier vertices absorb the
    remainder); every other interior vertex uses the maximum channel count of
    its successors, which allows channel truncation (never padding) along
    interior edges.
    """
    matrix = np.asarray(matrix)
    num_vertices = matrix.shape[0]
    vertex_channels = [0] * num_vertices
    vertex_channels[0] = input_channels
    vertex_channels[-1] = output_channels
    if num_vertices == 2:
        return vertex_channels

    # In-degree of each vertex counting only edges from interior vertices.
    in_degree = matrix[1:].sum(axis=0)
    output_fan_in = int(in_degree[num_vertices - 1])
    if output_fan_in == 0:
        raise InvalidCellError("pruned cell output is fed only by the input vertex")

    interior_channels = output_channels // output_fan_in
    correction = output_channels % output_fan_in

    for v in range(1, num_vertices - 1):
        if matrix[v, num_vertices - 1]:
            vertex_channels[v] = interior_channels
            if correction:
                vertex_channels[v] += 1
                correction -= 1

    for v in range(num_vertices - 3, 0, -1):
        if not matrix[v, num_vertices - 1]:
            for dst in range(v + 1, num_vertices - 1):
                if matrix[v, dst]:
                    vertex_channels[v] = max(vertex_channels[v], vertex_channels[dst])

    return vertex_channels


# ---------------------------------------------------------------------- #
# Cell and network expansion
# ---------------------------------------------------------------------- #
_OP_KERNELS = {CONV3X3: 3, CONV1X1: 1}


def build_cell_layers(
    cell: Cell,
    input_channels: int,
    output_channels: int,
    height: int,
    width: int,
    name_prefix: str,
) -> list[LayerSpec]:
    """Expand one (pruned) cell instance into its layer list.

    Parameters
    ----------
    cell:
        The pruned cell to expand.
    input_channels / output_channels:
        Channel count of the tensor entering / leaving the cell.
    height / width:
        Spatial size of the tensor entering the cell (cells are spatial-size
        preserving).
    name_prefix:
        Prefix such as ``"stack0/cell1"`` used to build layer names.
    """
    matrix = cell.numpy_matrix()
    num_vertices = cell.num_vertices
    layers: list[LayerSpec] = []

    if num_vertices == 2:
        # Degenerate input->output cell: a single projection carries the
        # tensor (and adapts the channel count when the stack doubles it).
        layers.append(
            LayerSpec(
                name=f"{name_prefix}/output_projection",
                kind=KIND_PROJECTION,
                input_height=height,
                input_width=width,
                in_channels=input_channels,
                out_channels=output_channels,
                kernel_size=1,
                stride=1,
                has_batch_norm=True,
            )
        )
        return layers

    channels = compute_vertex_channels(input_channels, output_channels, matrix)

    for v in range(1, num_vertices - 1):
        op = cell.ops[v]
        vertex_name = f"{name_prefix}/vertex{v}"
        fan_in_sources = [src for src in range(1, v) if matrix[src, v]]
        takes_cell_input = bool(matrix[0, v])

        # Edges from the cell input pass through a 1x1 projection so the
        # channel counts line up with the vertex.
        if takes_cell_input:
            layers.append(
                LayerSpec(
                    name=f"{vertex_name}/input_projection",
                    kind=KIND_PROJECTION,
                    input_height=height,
                    input_width=width,
                    in_channels=input_channels,
                    out_channels=channels[v],
                    kernel_size=1,
                    stride=1,
                    has_batch_norm=True,
                )
            )

        # Element-wise sum of all incoming tensors (projected input plus
        # truncated interior tensors).  Emitted only when there is more than
        # one producer, as a zero-weight data-movement layer.
        num_inputs = len(fan_in_sources) + (1 if takes_cell_input else 0)
        if num_inputs > 1:
            layers.append(
                LayerSpec(
                    name=f"{vertex_name}/add",
                    kind=KIND_ADD,
                    input_height=height,
                    input_width=width,
                    in_channels=channels[v] * num_inputs,
                    out_channels=channels[v],
                    kernel_size=1,
                    stride=1,
                )
            )

        # The vertex operation itself.
        if op in _OP_KERNELS:
            layers.append(
                LayerSpec(
                    name=f"{vertex_name}/{'conv3x3' if op == CONV3X3 else 'conv1x1'}",
                    kind=KIND_CONV,
                    input_height=height,
                    input_width=width,
                    in_channels=channels[v],
                    out_channels=channels[v],
                    kernel_size=_OP_KERNELS[op],
                    stride=1,
                    has_batch_norm=True,
                )
            )
        elif op == MAXPOOL3X3:
            layers.append(
                LayerSpec(
                    name=f"{vertex_name}/maxpool3x3",
                    kind=KIND_MAXPOOL,
                    input_height=height,
                    input_width=width,
                    in_channels=channels[v],
                    out_channels=channels[v],
                    kernel_size=3,
                    stride=1,
                )
            )
        else:  # pragma: no cover - guarded by Cell validation
            raise InvalidCellError(f"unknown interior operation {op!r}")

    # Output vertex: concatenate every interior vertex feeding the output.
    concat_sources = [v for v in range(1, num_vertices - 1) if matrix[v, num_vertices - 1]]
    if len(concat_sources) > 1:
        layers.append(
            LayerSpec(
                name=f"{name_prefix}/output_concat",
                kind=KIND_CONCAT,
                input_height=height,
                input_width=width,
                in_channels=sum(channels[v] for v in concat_sources),
                out_channels=output_channels,
                kernel_size=1,
                stride=1,
            )
        )

    # An edge from the cell input directly to the output adds a projected
    # copy of the input to the concatenated result.
    if matrix[0, num_vertices - 1]:
        layers.append(
            LayerSpec(
                name=f"{name_prefix}/output_projection",
                kind=KIND_PROJECTION,
                input_height=height,
                input_width=width,
                in_channels=input_channels,
                out_channels=output_channels,
                kernel_size=1,
                stride=1,
                has_batch_norm=True,
            )
        )
        layers.append(
            LayerSpec(
                name=f"{name_prefix}/output_add",
                kind=KIND_ADD,
                input_height=height,
                input_width=width,
                in_channels=2 * output_channels,
                out_channels=output_channels,
                kernel_size=1,
                stride=1,
            )
        )

    return layers


def build_network(cell: Cell, config: NetworkConfig | None = None) -> NetworkSpec:
    """Expand *cell* into the full NASBench-101 CIFAR-10 network.

    A thin wrapper over the staged macro expansion: the legacy backbone is
    exactly the trivial :class:`~repro.nasbench.macro.MacroSpec` (the same
    pruned cell in every stage, stage-0 width multiplier 1, multiplier 2
    after every downsample), so this delegates to
    :meth:`~repro.nasbench.macro.MacroSpec.from_network_config` and produces
    bit-for-bit the layer list the inline loop used to emit.
    """
    from .macro import MacroSpec  # deferred: macro imports this module

    if config is None:
        config = NetworkConfig()
    network = MacroSpec.from_network_config(cell, config).build_network()
    # The derived config of the trivial macro round-trips the input exactly;
    # return the caller's instance so identity-based callers see their own.
    return NetworkSpec(cell=network.cell, config=config, layers=network.layers)


def iter_layer_names(spec: NetworkSpec) -> Iterable[str]:
    """Yield the names of all layers of *spec* (mainly for debugging/tests)."""
    for layer in spec.layers:
        yield layer.name
