"""Mutation operators over NASBench-101 cells.

The search subsystem (:mod:`repro.search`) explores the cell space by local
moves rather than fresh sampling.  Four primitive mutations are provided,
matching the neighborhood used by regularized-evolution NAS on this space:

* **edge flip** — toggle one slot of the upper-triangular adjacency matrix;
* **op swap** — relabel one interior vertex with a different operation;
* **vertex add** — splice a new interior vertex into the DAG, wired to one
  predecessor and one successor;
* **vertex remove** — delete one interior vertex with all its edges.

Every entry point returns a **pruned, valid** cell inside the vertex/edge
budget, or raises: mutations whose result is disconnected, over budget, or
isomorphic to the input are rejected and retried.  De-duplication against a
search history is fingerprint-based — :class:`~repro.nasbench.cell.Cell`
hashes by its cached isomorphism fingerprint, so the ``seen`` container given
to :func:`mutate_unique` can be a plain ``set[Cell]``.
"""

from __future__ import annotations

from typing import Container, Sequence

import numpy as np

from ..errors import DatasetError, InvalidCellError
from .cell import Cell
from .macro import MAX_STAGE_DEPTH, WIDTH_MULTIPLIERS, MacroSpec, StageSpec
from .ops import INTERIOR_OPS, MAX_EDGES, MAX_VERTICES

#: The primitive mutation kinds, in canonical order.
MUTATION_KINDS: tuple[str, ...] = ("edge_flip", "op_swap", "vertex_add", "vertex_remove")

#: The macro-level mutation kinds (see :func:`mutate_macro`).
MACRO_MUTATION_KINDS: tuple[str, ...] = ("stage_cell", "stage_depth", "stage_width")


# --------------------------------------------------------------------------- #
# Primitive mutations.  Each returns an *unpruned* candidate; structural
# validity (connectivity, budgets) is enforced by the mutate_cell driver.
# --------------------------------------------------------------------------- #
def flip_edge(cell: Cell, rng: np.random.Generator) -> Cell:
    """Toggle one random slot of the upper-triangular adjacency matrix."""
    n = cell.num_vertices
    slots = [(i, j) for i in range(n) for j in range(i + 1, n)]
    i, j = slots[int(rng.integers(len(slots)))]
    matrix = cell.numpy_matrix()
    matrix[i, j] = 1 - matrix[i, j]
    return Cell(matrix, cell.ops)


def swap_op(
    cell: Cell, rng: np.random.Generator, interior_ops: Sequence[str] = INTERIOR_OPS
) -> Cell:
    """Relabel one random interior vertex with a different operation."""
    if cell.num_vertices <= 2:
        raise InvalidCellError("cell has no interior vertex to relabel")
    vertex = int(rng.integers(1, cell.num_vertices - 1))
    choices = [op for op in interior_ops if op != cell.ops[vertex]]
    if not choices:
        raise InvalidCellError("no alternative operation label is available")
    ops = list(cell.ops)
    ops[vertex] = str(choices[int(rng.integers(len(choices)))])
    return Cell(cell.numpy_matrix(), ops)


def add_vertex(
    cell: Cell,
    rng: np.random.Generator,
    interior_ops: Sequence[str] = INTERIOR_OPS,
    max_vertices: int = MAX_VERTICES,
) -> Cell:
    """Splice a new interior vertex into the DAG at a random position.

    The new vertex is wired to one random predecessor and one random
    successor, so it always lies on an input-to-output path.
    """
    n = cell.num_vertices
    if n >= max_vertices:
        raise InvalidCellError(f"cell already has the maximum of {max_vertices} vertices")
    position = int(rng.integers(1, n))  # insert before this index, keeps 0 first
    matrix = cell.numpy_matrix()
    grown = np.zeros((n + 1, n + 1), dtype=np.int8)
    grown[:position, :position] = matrix[:position, :position]
    grown[:position, position + 1 :] = matrix[:position, position:]
    grown[position + 1 :, position + 1 :] = matrix[position:, position:]
    predecessor = int(rng.integers(0, position))
    successor = int(rng.integers(position + 1, n + 1))
    grown[predecessor, position] = 1
    grown[position, successor] = 1
    ops = list(cell.ops)
    ops.insert(position, str(interior_ops[int(rng.integers(len(interior_ops)))]))
    return Cell(grown, ops)


def remove_vertex(cell: Cell, rng: np.random.Generator) -> Cell:
    """Delete one random interior vertex together with all its edges."""
    if cell.num_vertices <= 2:
        raise InvalidCellError("cell has no interior vertex to remove")
    vertex = int(rng.integers(1, cell.num_vertices - 1))
    keep = [i for i in range(cell.num_vertices) if i != vertex]
    matrix = cell.numpy_matrix()[np.ix_(keep, keep)]
    ops = [cell.ops[i] for i in keep]
    return Cell(matrix, ops)


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
def _applicable_kinds(
    cell: Cell,
    kinds: Sequence[str],
    max_vertices: int,
    max_edges: int,
    interior_ops: Sequence[str],
) -> list[str]:
    """The mutation kinds that can possibly produce a valid result for *cell*."""
    applicable = []
    for kind in kinds:
        if kind == "edge_flip":
            applicable.append(kind)
        elif kind == "op_swap":
            if any(any(op != existing for op in interior_ops) for existing in cell.interior_ops):
                applicable.append(kind)
        elif kind == "vertex_add":
            if cell.num_vertices < max_vertices and cell.num_edges + 2 <= max_edges:
                applicable.append(kind)
        elif kind == "vertex_remove":
            if cell.num_vertices > 2:
                applicable.append(kind)
        else:
            raise DatasetError(f"unknown mutation kind {kind!r}; expected one of {MUTATION_KINDS}")
    return applicable


def mutate_cell(
    cell: Cell,
    rng: np.random.Generator,
    max_vertices: int = MAX_VERTICES,
    max_edges: int = MAX_EDGES,
    interior_ops: Sequence[str] = INTERIOR_OPS,
    kinds: Sequence[str] = MUTATION_KINDS,
    max_attempts: int = 100,
) -> Cell:
    """Return one random valid mutation of *cell*.

    A uniformly chosen applicable mutation kind is applied and the result is
    pruned; candidates that are disconnected, outside the vertex/edge budget,
    or isomorphic to the input (a semantic no-op, e.g. flipping an edge of a
    dangling branch) are rejected and redrawn.

    Raises
    ------
    DatasetError
        If no valid, model-changing mutation is found in *max_attempts* draws
        (or no kind is applicable at all).
    """
    applicable = _applicable_kinds(cell, kinds, max_vertices, max_edges, interior_ops)
    if not applicable:
        raise DatasetError(f"no mutation kind of {tuple(kinds)} is applicable to {cell}")
    for _ in range(max_attempts):
        kind = applicable[int(rng.integers(len(applicable)))]
        try:
            if kind == "edge_flip":
                mutant = flip_edge(cell, rng)
            elif kind == "op_swap":
                mutant = swap_op(cell, rng, interior_ops)
            elif kind == "vertex_add":
                mutant = add_vertex(cell, rng, interior_ops, max_vertices)
            else:
                mutant = remove_vertex(cell, rng)
            pruned = mutant.prune()
        except InvalidCellError:
            continue
        if pruned.num_vertices > max_vertices or pruned.num_edges > max_edges:
            continue
        if pruned == cell:  # isomorphic to the parent: not a new model
            continue
        return pruned
    raise DatasetError(
        f"failed to produce a valid mutation of {cell} after {max_attempts} attempts"
    )


def mutate_unique(
    cell: Cell,
    rng: np.random.Generator,
    seen: Container[Cell],
    max_vertices: int = MAX_VERTICES,
    max_edges: int = MAX_EDGES,
    interior_ops: Sequence[str] = INTERIOR_OPS,
    kinds: Sequence[str] = MUTATION_KINDS,
    max_attempts: int = 50,
) -> Cell:
    """Mutate *cell* until the result is not contained in *seen*.

    Membership is fingerprint-based (``mutant in seen`` with a ``set[Cell]``
    uses the cached isomorphism fingerprint), so a search history never
    re-evaluates a model it has already measured.

    Raises
    ------
    DatasetError
        If every drawn mutation was already seen (a crowded neighborhood);
        callers typically fall back to a fresh random cell.
    """
    for _ in range(max_attempts):
        mutant = mutate_cell(
            cell,
            rng,
            max_vertices=max_vertices,
            max_edges=max_edges,
            interior_ops=interior_ops,
            kinds=kinds,
        )
        if mutant not in seen:
            return mutant
    raise DatasetError(
        f"every mutation of {cell} drawn in {max_attempts} attempts was already seen"
    )


# --------------------------------------------------------------------------- #
# Macro-level mutations
# --------------------------------------------------------------------------- #
def _nearest_multiplier_index(multiplier: float) -> int:
    """Index of the :data:`WIDTH_MULTIPLIERS` rung closest to *multiplier*."""
    return min(
        range(len(WIDTH_MULTIPLIERS)),
        key=lambda index: abs(WIDTH_MULTIPLIERS[index] - multiplier),
    )


def _macro_applicable_kinds(macro: MacroSpec, kinds: Sequence[str]) -> list[str]:
    """The macro mutation kinds that can change *macro* at all."""
    applicable = []
    for kind in kinds:
        if kind == "stage_cell":
            applicable.append(kind)
        elif kind == "stage_depth":
            if any(1 < stage.depth or stage.depth < MAX_STAGE_DEPTH for stage in macro.stages):
                applicable.append(kind)
        elif kind == "stage_width":
            # A ladder step exists unless every stage sits on a one-rung
            # ladder, which cannot happen with the canonical ladder.
            if len(WIDTH_MULTIPLIERS) > 1:
                applicable.append(kind)
        else:
            raise DatasetError(
                f"unknown macro mutation kind {kind!r}; expected one of {MACRO_MUTATION_KINDS}"
            )
    return applicable


def mutate_macro(
    macro: MacroSpec,
    rng: np.random.Generator,
    max_vertices: int = MAX_VERTICES,
    max_edges: int = MAX_EDGES,
    interior_ops: Sequence[str] = INTERIOR_OPS,
    kinds: Sequence[str] = MACRO_MUTATION_KINDS,
    max_attempts: int = 100,
) -> MacroSpec:
    """Return one random valid macro-level mutation of *macro*.

    The move set mirrors the cell driver at the stage granularity:

    * **stage cell** — replace one stage's cell with a :func:`mutate_cell`
      neighbor of it (the cell-space move, localized to one stage);
    * **stage depth** — one stage's depth ±1 within ``[1, MAX_STAGE_DEPTH]``;
    * **stage width** — one stage's width multiplier steps one rung up or
      down the :data:`WIDTH_MULTIPLIERS` ladder (off-ladder multipliers snap
      to the nearest rung first).

    Candidates identical to the parent (fingerprint-equal — e.g. a cell
    mutation that lands on an isomorphic cell) are rejected and redrawn.

    Raises
    ------
    DatasetError
        If no valid, model-changing mutation is found in *max_attempts*
        draws.
    """
    applicable = _macro_applicable_kinds(macro, kinds)
    if not applicable:
        raise DatasetError(f"no macro mutation kind of {tuple(kinds)} is applicable to {macro}")
    for _ in range(max_attempts):
        kind = applicable[int(rng.integers(len(applicable)))]
        stage_index = int(rng.integers(len(macro.stages)))
        stage = macro.stages[stage_index]
        try:
            if kind == "stage_cell":
                mutated = StageSpec(
                    cell=mutate_cell(
                        stage.cell,
                        rng,
                        max_vertices=max_vertices,
                        max_edges=max_edges,
                        interior_ops=interior_ops,
                    ),
                    depth=stage.depth,
                    width_multiplier=stage.width_multiplier,
                )
            elif kind == "stage_depth":
                step = 1 if rng.integers(2) else -1
                depth = stage.depth + step
                if not 1 <= depth <= MAX_STAGE_DEPTH:
                    continue
                mutated = StageSpec(
                    cell=stage.cell, depth=depth, width_multiplier=stage.width_multiplier
                )
            else:  # stage_width
                rung = _nearest_multiplier_index(stage.width_multiplier)
                step = 1 if rng.integers(2) else -1
                if not 0 <= rung + step < len(WIDTH_MULTIPLIERS):
                    continue
                multiplier = WIDTH_MULTIPLIERS[rung + step]
                if multiplier == stage.width_multiplier:
                    continue
                mutated = StageSpec(
                    cell=stage.cell, depth=stage.depth, width_multiplier=multiplier
                )
        except (InvalidCellError, DatasetError):
            continue
        stages = list(macro.stages)
        stages[stage_index] = mutated
        candidate = MacroSpec(
            stages,
            stem_channels=macro.stem_channels,
            image_size=macro.image_size,
            image_channels=macro.image_channels,
            num_classes=macro.num_classes,
        )
        if candidate == macro:  # fingerprint-equal: not a new model
            continue
        return candidate
    raise DatasetError(
        f"failed to produce a valid macro mutation of {macro} after {max_attempts} attempts"
    )


def mutate_macro_unique(
    macro: MacroSpec,
    rng: np.random.Generator,
    seen: Container[MacroSpec],
    max_vertices: int = MAX_VERTICES,
    max_edges: int = MAX_EDGES,
    interior_ops: Sequence[str] = INTERIOR_OPS,
    kinds: Sequence[str] = MACRO_MUTATION_KINDS,
    max_attempts: int = 50,
) -> MacroSpec:
    """Mutate *macro* until the result is not contained in *seen*.

    Membership is fingerprint-based, exactly like :func:`mutate_unique`: a
    ``set[MacroSpec]`` hashes by the cached content fingerprint.

    Raises
    ------
    DatasetError
        If every drawn mutation was already seen; callers typically fall
        back to a fresh :func:`~repro.nasbench.macro.random_macro`.
    """
    for _ in range(max_attempts):
        mutant = mutate_macro(
            macro,
            rng,
            max_vertices=max_vertices,
            max_edges=max_edges,
            interior_ops=interior_ops,
            kinds=kinds,
        )
        if mutant not in seen:
            return mutant
    raise DatasetError(
        f"every macro mutation of {macro} drawn in {max_attempts} attempts was already seen"
    )
