"""Structure-of-arrays representation of expanded networks.

The analytical cost model is arithmetic over per-layer scalars, which makes a
population sweep embarrassingly data-parallel: instead of walking Python
:class:`~repro.nasbench.network.LayerSpec` objects one at a time, the layers
of one or many networks can be flattened once into aligned NumPy arrays and
every downstream formula (tiling, cache planning, timing, energy) applied to
the whole population at once.  :class:`LayerTable` is that flattening — the
"compile once, simulate wide" substrate shared by the batch engine in
:mod:`repro.simulator.batch` and the array kernels in :mod:`repro.compiler`.

Per-model boundaries are kept as *segment offsets* (``model_offsets[m]`` is
the first layer row of model ``m``; ``model_offsets[-1]`` is the total row
count), so whole-model reductions are ``np.add.reduceat`` calls over the
layer axis.  The derived quantities (output sizes, MACs, weight bytes,
activation footprints) are computed vectorized with exactly the same formulas
as the corresponding :class:`LayerSpec` properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import CompilationError, DatasetError
from .network import (
    KIND_ADD,
    KIND_CONCAT,
    KIND_CONV,
    KIND_DENSE,
    KIND_DOWNSAMPLE,
    KIND_GLOBAL_POOL,
    KIND_MAXPOOL,
    KIND_PROJECTION,
    LayerSpec,
    NetworkSpec,
)

#: Integer codes of the layer kinds (stable, used by the array kernels).
CODE_CONV = 0
CODE_PROJECTION = 1
CODE_DENSE = 2
CODE_MAXPOOL = 3
CODE_DOWNSAMPLE = 4
CODE_ADD = 5
CODE_CONCAT = 6
CODE_GLOBAL_POOL = 7

#: Mapping from the string layer kinds to their integer codes.
KIND_CODES: dict[str, int] = {
    KIND_CONV: CODE_CONV,
    KIND_PROJECTION: CODE_PROJECTION,
    KIND_DENSE: CODE_DENSE,
    KIND_MAXPOOL: CODE_MAXPOOL,
    KIND_DOWNSAMPLE: CODE_DOWNSAMPLE,
    KIND_ADD: CODE_ADD,
    KIND_CONCAT: CODE_CONCAT,
    KIND_GLOBAL_POOL: CODE_GLOBAL_POOL,
}

#: Codes executed on the MAC datapath (mirrors ``tiling._MAC_KINDS``).
MAC_CODES = (CODE_CONV, CODE_PROJECTION, CODE_DENSE)


def ceil_div(numerator, denominator):
    """Exact integer ceiling division (no float round-trip); elementwise."""
    return -(-numerator // denominator)


@dataclass(frozen=True)
class LayerTable:
    """Aligned per-layer arrays for one or many expanded networks.

    All arrays share the layer axis; ``model_offsets`` (length
    ``num_models + 1``) marks the segment of rows belonging to each model.
    Instances are built with :meth:`from_networks` / :meth:`from_specs` (or
    :meth:`NetworkSpec.to_layer_table`), which also compute the derived
    quantities vectorized.
    """

    #: Integer layer-kind codes (see :data:`KIND_CODES`).
    kind_codes: np.ndarray
    input_height: np.ndarray
    input_width: np.ndarray
    in_channels: np.ndarray
    out_channels: np.ndarray
    kernel_size: np.ndarray
    stride: np.ndarray
    #: Segment offsets: layer rows of model ``m`` are
    #: ``model_offsets[m]:model_offsets[m + 1]``.
    model_offsets: np.ndarray
    # Derived, aligned with the layer axis.
    output_height: np.ndarray
    output_width: np.ndarray
    macs: np.ndarray
    weight_bytes: np.ndarray
    input_activation_bytes: np.ndarray
    output_activation_bytes: np.ndarray
    #: ``True`` for rows executed on the MAC datapath.
    is_mac: np.ndarray

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_specs(
        cls,
        specs: Sequence[LayerSpec],
        model_offsets: Sequence[int] | np.ndarray | None = None,
    ) -> "LayerTable":
        """Build a table from a flat layer list (one model unless offsets given)."""
        if not specs:
            raise DatasetError("cannot build a LayerTable from zero layers")
        try:
            rows = np.array(
                [
                    (
                        KIND_CODES[spec.kind],
                        spec.input_height,
                        spec.input_width,
                        spec.in_channels,
                        spec.out_channels,
                        spec.kernel_size,
                        spec.stride,
                    )
                    for spec in specs
                ],
                dtype=np.int64,
            )
        except KeyError as exc:
            bad = next(spec for spec in specs if spec.kind not in KIND_CODES)
            raise CompilationError(
                f"layer {bad.name!r} has kind {bad.kind!r}, which is not "
                "supported by the Edge TPU mapping"
            ) from exc
        invalid = (rows[:, 3] <= 0) | (rows[:, 4] <= 0)
        if invalid.any():
            bad = specs[int(np.argmax(invalid))]
            raise CompilationError(
                f"layer {bad.name!r} has non-positive channel counts "
                f"({bad.in_channels} -> {bad.out_channels})"
            )
        if model_offsets is None:
            offsets = np.array([0, len(specs)], dtype=np.int64)
        else:
            offsets = np.asarray(model_offsets, dtype=np.int64)
            if offsets[0] != 0 or offsets[-1] != len(specs) or np.any(np.diff(offsets) <= 0):
                raise DatasetError("model_offsets must partition the layer rows")
        return cls._finalize(rows, offsets)

    @classmethod
    def from_networks(cls, networks: Iterable[NetworkSpec]) -> "LayerTable":
        """Flatten many networks into one table with per-model segment offsets."""
        specs: list[LayerSpec] = []
        offsets = [0]
        for network in networks:
            specs.extend(network.layers)
            offsets.append(len(specs))
        if len(offsets) == 1:
            raise DatasetError("cannot build a LayerTable from zero networks")
        return cls.from_specs(specs, model_offsets=offsets)

    @classmethod
    def _finalize(cls, rows: np.ndarray, offsets: np.ndarray) -> "LayerTable":
        """Compute the derived columns (same formulas as ``LayerSpec``)."""
        code, ih, iw, cin, cout, kernel, stride = rows.T
        headless = (code == CODE_GLOBAL_POOL) | (code == CODE_DENSE)
        oh = np.where(headless, 1, ceil_div(ih, stride))
        ow = np.where(headless, 1, ceil_div(iw, stride))

        is_conv = (code == CODE_CONV) | (code == CODE_PROJECTION)
        is_dense = code == CODE_DENSE
        kernel_weights = kernel * kernel * cin * cout
        macs = np.where(is_conv, kernel_weights * oh * ow, np.where(is_dense, cin * cout, 0))
        weight_bytes = np.where(
            is_conv,
            kernel_weights + 4 * cout,
            np.where(is_dense, cin * cout + 4 * cout, 0),
        )
        return cls(
            kind_codes=code,
            input_height=ih,
            input_width=iw,
            in_channels=cin,
            out_channels=cout,
            kernel_size=kernel,
            stride=stride,
            model_offsets=offsets,
            output_height=oh,
            output_width=ow,
            macs=macs,
            weight_bytes=weight_bytes,
            input_activation_bytes=ih * iw * cin,
            output_activation_bytes=oh * ow * cout,
            is_mac=np.isin(code, MAC_CODES),
        )

    # ------------------------------------------------------------------ #
    # Shape and segment helpers
    # ------------------------------------------------------------------ #
    @property
    def num_models(self) -> int:
        """Number of model segments in the table."""
        return len(self.model_offsets) - 1

    @property
    def num_layers(self) -> int:
        """Total number of layer rows across all models."""
        return int(self.model_offsets[-1])

    def __len__(self) -> int:
        return self.num_layers

    @property
    def segment_starts(self) -> np.ndarray:
        """First layer row of every model (``reduceat`` offsets)."""
        return self.model_offsets[:-1]

    @property
    def model_ids(self) -> np.ndarray:
        """Model index of every layer row."""
        return np.repeat(np.arange(self.num_models), np.diff(self.model_offsets))

    def segment_sum(self, values: np.ndarray) -> np.ndarray:
        """Per-model sum of a layer-aligned array."""
        return np.add.reduceat(np.asarray(values), self.segment_starts)

    def segment_max(self, values: np.ndarray) -> np.ndarray:
        """Per-model maximum of a layer-aligned array."""
        return np.maximum.reduceat(np.asarray(values), self.segment_starts)

    def model_slice(self, model_index: int) -> slice:
        """Layer-row slice of one model."""
        return slice(int(self.model_offsets[model_index]), int(self.model_offsets[model_index + 1]))
