"""Graph-isomorphism hashing of NASBench cells.

NASBench-101 de-duplicates its search space by computing an iterative,
operation-aware graph hash (a Weisfeiler-Lehman style refinement seeded with
per-vertex in-degree, out-degree, and operation label) and keeping one
representative per hash value.  This module reimplements that algorithm so the
generator in :mod:`repro.nasbench.generator` produces the same notion of
"unique model" as the dataset used by the paper.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from .cell import Cell
from .ops import HASH_ENCODING


def _md5(text: str) -> str:
    return hashlib.md5(text.encode("utf-8")).hexdigest()


def hash_graph(matrix: np.ndarray, labels: Sequence[int]) -> str:
    """Return an isomorphism-invariant hash of a labelled DAG.

    Parameters
    ----------
    matrix:
        Square 0/1 adjacency matrix (``matrix[i, j] == 1`` for an edge
        ``i -> j``).
    labels:
        One integer label per vertex (operation code).

    Returns
    -------
    str
        Hex digest.  Two graphs that differ only by a relabelling of vertices
        (with matching operation labels) hash to the same value.
    """
    matrix = np.asarray(matrix)
    num_vertices = matrix.shape[0]
    if len(labels) != num_vertices:
        raise ValueError(f"matrix has {num_vertices} vertices but {len(labels)} labels were given")

    in_degrees = matrix.sum(axis=0).tolist()
    out_degrees = matrix.sum(axis=1).tolist()
    hashes = [
        _md5(str((int(out_degrees[v]), int(in_degrees[v]), int(labels[v]))))
        for v in range(num_vertices)
    ]

    # Iterative refinement: each round folds the sorted hashes of the in- and
    # out-neighbourhoods into every vertex hash.  ``num_vertices`` rounds are
    # enough for information to traverse the longest possible path.
    for _ in range(num_vertices):
        new_hashes = []
        for v in range(num_vertices):
            in_neighbors = sorted(hashes[w] for w in range(num_vertices) if matrix[w, v])
            out_neighbors = sorted(hashes[w] for w in range(num_vertices) if matrix[v, w])
            new_hashes.append(
                _md5("".join(in_neighbors) + "|" + "".join(out_neighbors) + "|" + hashes[v])
            )
        hashes = new_hashes

    return _md5(str(sorted(hashes)))


def cell_fingerprint(cell: Cell, prune: bool = True) -> str:
    """Return the canonical fingerprint of a :class:`Cell`.

    The cell is pruned first (extraneous vertices removed) so that two cells
    computing the same function — even if one carries dangling vertices —
    receive the same fingerprint, matching NASBench-101's de-duplication
    semantics.
    """
    canonical = cell.prune() if prune else cell
    labels = [HASH_ENCODING[op] for op in canonical.ops]
    return hash_graph(canonical.numpy_matrix(), labels)


def permute_cell(cell: Cell, permutation: Sequence[int]) -> Cell:
    """Return *cell* with its interior vertices reordered by *permutation*.

    The permutation is expressed over all vertices but must keep vertex ``0``
    first and the output vertex last, and must keep the adjacency matrix upper
    triangular (i.e. it must be a valid topological re-ordering).  This helper
    exists mainly for tests that check hash invariance.
    """
    permutation = list(permutation)
    n = cell.num_vertices
    if sorted(permutation) != list(range(n)):
        raise ValueError("permutation must be a rearrangement of all vertex indices")
    if permutation[0] != 0 or permutation[-1] != n - 1:
        raise ValueError("permutation must keep the input first and the output last")
    matrix = cell.numpy_matrix()
    perm = np.asarray(permutation)
    new_matrix = matrix[np.ix_(perm, perm)]
    new_ops = [cell.ops[i] for i in permutation]
    return Cell(new_matrix, new_ops)
