"""Dataset abstraction tying cells, metrics, parameters and accuracy together.

:class:`NASBenchDataset` plays the role of the NASBench-101 API in the paper's
methodology: it owns a population of unique cells together with their
structural metrics, trainable-parameter counts and (surrogate) mean validation
accuracies, and offers the filtering / querying operations the evaluation
section relies on (accuracy thresholds, top-k by accuracy, grouping keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..errors import DatasetError
from .accuracy import SurrogateAccuracyModel
from .cell import Cell
from .famous_cells import FAMOUS_CELLS
from .generator import enumerate_cells, sample_unique_cells
from .graph_metrics import CellMetrics, compute_metrics
from .hashing import cell_fingerprint
from .macro import MacroSpec
from .network import NetworkConfig, NetworkSpec, build_network


@dataclass(frozen=True)
class ModelRecord:
    """One model of the dataset: a unique architecture plus derived quantities.

    Legacy records carry a cell expanded through the dataset's shared
    backbone; macro records (``macro`` set) additionally carry their own
    :class:`~repro.nasbench.macro.MacroSpec`, whose fingerprint then serves
    as the record's identity (``cell`` holds the macro's representative
    first-stage cell so structural queries keep working).
    """

    index: int
    cell: Cell
    fingerprint: str
    metrics: CellMetrics
    trainable_parameters: int
    mean_validation_accuracy: float
    macro: MacroSpec | None = None

    @property
    def architecture(self) -> Cell | MacroSpec:
        """The searchable object this record measures (macro when present)."""
        return self.macro if self.macro is not None else self.cell

    def build_network(self, config: NetworkConfig | None = None) -> NetworkSpec:
        """Expand the record's architecture into its full network.

        Macro records expand through their own staged schedule and ignore
        *config*; cell records expand through the legacy backbone.
        """
        if self.macro is not None:
            return self.macro.build_network()
        return build_network(self.cell, config)


class NASBenchDataset:
    """A population of unique NASBench models.

    Instances are immutable containers of :class:`ModelRecord`; all filtering
    operations return new datasets sharing the same records.
    """

    def __init__(self, records: Sequence[ModelRecord], network_config: NetworkConfig):
        self._records = tuple(records)
        self._network_config = network_config
        self._by_fingerprint = {record.fingerprint: record for record in self._records}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def generate(
        cls,
        num_models: int = 1000,
        seed: int = 0,
        network_config: NetworkConfig | None = None,
        accuracy_model: SurrogateAccuracyModel | None = None,
        include_famous_cells: bool = True,
    ) -> "NASBenchDataset":
        """Generate a dataset of *num_models* unique cells by random sampling.

        The named cells from the paper's figures are included by default so
        the per-figure benchmarks can always find them.
        """
        extra = list(FAMOUS_CELLS.values()) if include_famous_cells else []
        cells = sample_unique_cells(num_models, seed=seed, extra_cells=extra)
        return cls.from_cells(cells, network_config=network_config, accuracy_model=accuracy_model)

    @classmethod
    def enumerate(
        cls,
        max_vertices: int,
        max_edges: int = 9,
        network_config: NetworkConfig | None = None,
        accuracy_model: SurrogateAccuracyModel | None = None,
    ) -> "NASBenchDataset":
        """Exhaustively enumerate a (small) sub-space into a dataset."""
        cells = list(enumerate_cells(max_vertices=max_vertices, max_edges=max_edges))
        return cls.from_cells(cells, network_config=network_config, accuracy_model=accuracy_model)

    @classmethod
    def from_cells(
        cls,
        cells: Iterable[Cell],
        network_config: NetworkConfig | None = None,
        accuracy_model: SurrogateAccuracyModel | None = None,
    ) -> "NASBenchDataset":
        """Build a dataset from an iterable of cells (de-duplicated)."""
        network_config = network_config or NetworkConfig()
        accuracy_model = accuracy_model or SurrogateAccuracyModel()

        records: list[ModelRecord] = []
        seen: set[str] = set()
        for cell in cells:
            pruned = cell.prune()
            fingerprint = pruned.fingerprint
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            metrics = compute_metrics(pruned, prune=False)
            network = build_network(pruned, network_config)
            parameters = network.trainable_parameters
            accuracy = accuracy_model.mean_validation_accuracy(
                pruned,
                fingerprint=fingerprint,
                metrics=metrics,
                trainable_parameters=parameters,
            )
            records.append(
                ModelRecord(
                    index=len(records),
                    cell=pruned,
                    fingerprint=fingerprint,
                    metrics=metrics,
                    trainable_parameters=parameters,
                    mean_validation_accuracy=accuracy,
                )
            )
        if not records:
            raise DatasetError("no valid cells were provided")
        return cls(records, network_config)

    @classmethod
    def from_macros(
        cls,
        macros: Iterable[MacroSpec],
        network_config: NetworkConfig | None = None,
        accuracy_model: SurrogateAccuracyModel | None = None,
    ) -> "NASBenchDataset":
        """Build a dataset from macro specs (de-duplicated by fingerprint).

        The surrogate accuracy keys on the *macro* fingerprint (so two
        macros sharing a cell still draw independent training noise) and its
        structural terms read the representative first-stage cell; the
        parameter term sees the true staged expansion.  *network_config*
        only fills the dataset attribute legacy consumers read — macro
        records expand through their own schedule.
        """
        network_config = network_config or NetworkConfig()
        accuracy_model = accuracy_model or SurrogateAccuracyModel()

        records: list[ModelRecord] = []
        seen: set[str] = set()
        for macro in macros:
            fingerprint = macro.fingerprint
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            representative = macro.representative_cell
            metrics = compute_metrics(representative, prune=False)
            network = macro.build_network()
            parameters = network.trainable_parameters
            accuracy = accuracy_model.mean_validation_accuracy(
                representative,
                fingerprint=fingerprint,
                metrics=metrics,
                trainable_parameters=parameters,
            )
            records.append(
                ModelRecord(
                    index=len(records),
                    cell=representative,
                    fingerprint=fingerprint,
                    metrics=metrics,
                    trainable_parameters=parameters,
                    mean_validation_accuracy=accuracy,
                    macro=macro,
                )
            )
        if not records:
            raise DatasetError("no valid macro specs were provided")
        return cls(records, network_config)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ModelRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> ModelRecord:
        return self._records[index]

    @property
    def records(self) -> tuple[ModelRecord, ...]:
        """All records of the dataset."""
        return self._records

    @property
    def network_config(self) -> NetworkConfig:
        """Macro-architecture configuration used to expand every cell."""
        return self._network_config

    # ------------------------------------------------------------------ #
    # Queries used by the evaluation
    # ------------------------------------------------------------------ #
    def find(self, fingerprint: str) -> ModelRecord:
        """Return the record with the given isomorphism fingerprint."""
        try:
            return self._by_fingerprint[fingerprint]
        except KeyError as exc:
            raise DatasetError(f"no model with fingerprint {fingerprint!r}") from exc

    def find_cell(self, cell: Cell) -> ModelRecord:
        """Return the record whose cell is isomorphic to *cell*."""
        return self.find(cell_fingerprint(cell))

    def __contains__(self, arch: Cell | MacroSpec) -> bool:
        if isinstance(arch, MacroSpec):
            return arch.fingerprint in self._by_fingerprint
        return cell_fingerprint(arch) in self._by_fingerprint

    def filter(self, predicate: Callable[[ModelRecord], bool]) -> "NASBenchDataset":
        """Return a new dataset with only the records satisfying *predicate*."""
        kept = [record for record in self._records if predicate(record)]
        if not kept:
            raise DatasetError("filter removed every record")
        return NASBenchDataset(kept, self._network_config)

    def filter_by_accuracy(self, min_accuracy: float = 0.70) -> "NASBenchDataset":
        """Keep models with at least *min_accuracy* mean validation accuracy.

        The paper applies exactly this filter (70%) before computing Table 3
        and the scatter-plot figures.
        """
        return self.filter(lambda record: record.mean_validation_accuracy >= min_accuracy)

    def top_k_by_accuracy(self, k: int = 5) -> list[ModelRecord]:
        """Return the *k* records with the highest mean validation accuracy."""
        ranked = sorted(
            self._records, key=lambda record: record.mean_validation_accuracy, reverse=True
        )
        return ranked[:k]

    def accuracies(self) -> np.ndarray:
        """Mean validation accuracy of every record, as a float array."""
        return np.array([record.mean_validation_accuracy for record in self._records], dtype=float)

    def parameter_counts(self) -> np.ndarray:
        """Trainable-parameter count of every record, as an int array."""
        return np.array([record.trainable_parameters for record in self._records], dtype=np.int64)

    def group_by(self, key: Callable[[ModelRecord], object]) -> dict[object, list[ModelRecord]]:
        """Group records by an arbitrary key function (depth, op count, ...)."""
        groups: dict[object, list[ModelRecord]] = {}
        for record in self._records:
            groups.setdefault(key(record), []).append(record)
        return groups
