"""NASBench-101-style workload substrate.

This subpackage reproduces the model space used by the paper's evaluation:
cell DAGs over {3x3 conv, 1x1 conv, 3x3 max-pool}, their expansion into full
CIFAR-10 networks, trainable-parameter counting, structural graph metrics, and
a surrogate accuracy model standing in for the published training results.
"""

from .accuracy import SurrogateAccuracyModel
from .cell import Cell
from .dataset import ModelRecord, NASBenchDataset
from .famous_cells import (
    BEST_ACCURACY_CELL,
    BEST_ACCURACY_VALUE,
    DEEP_CONV_HEAVY_CELL,
    FAMOUS_CELLS,
    SECOND_BEST_ACCURACY_CELL,
    SECOND_BEST_ACCURACY_VALUE,
    SHALLOW_CONV_HEAVY_CELL,
)
from .generator import enumerate_cells, random_cell, sample_unique_cells
from .graph_metrics import CellMetrics, compute_metrics
from .hashing import cell_fingerprint, hash_graph, permute_cell
from .macro import (
    MAX_STAGES,
    MAX_STAGE_DEPTH,
    WIDTH_MULTIPLIERS,
    MacroSpec,
    StageSpec,
    architecture_from_dict,
    architecture_to_dict,
    expand_architecture,
    random_macro,
)
from .mutation import (
    MACRO_MUTATION_KINDS,
    MUTATION_KINDS,
    add_vertex,
    flip_edge,
    mutate_cell,
    mutate_macro,
    mutate_macro_unique,
    mutate_unique,
    remove_vertex,
    swap_op,
)
from .layer_table import KIND_CODES, LayerTable
from .network import (
    LayerSpec,
    NetworkConfig,
    NetworkSpec,
    build_cell_layers,
    build_network,
    compute_vertex_channels,
)
from .ops import (
    ALL_OPS,
    CONV1X1,
    CONV3X3,
    INPUT,
    INTERIOR_OPS,
    MAXPOOL3X3,
    MAX_EDGES,
    MAX_VERTICES,
    OUTPUT,
)
from .params import ParameterInterval, count_parameters, parameter_distribution

__all__ = [
    "ALL_OPS",
    "BEST_ACCURACY_CELL",
    "BEST_ACCURACY_VALUE",
    "CONV1X1",
    "CONV3X3",
    "Cell",
    "CellMetrics",
    "DEEP_CONV_HEAVY_CELL",
    "FAMOUS_CELLS",
    "INPUT",
    "INTERIOR_OPS",
    "KIND_CODES",
    "LayerSpec",
    "LayerTable",
    "MACRO_MUTATION_KINDS",
    "MAXPOOL3X3",
    "MAX_EDGES",
    "MAX_STAGES",
    "MAX_STAGE_DEPTH",
    "MAX_VERTICES",
    "MUTATION_KINDS",
    "MacroSpec",
    "ModelRecord",
    "NASBenchDataset",
    "NetworkConfig",
    "NetworkSpec",
    "OUTPUT",
    "ParameterInterval",
    "StageSpec",
    "SECOND_BEST_ACCURACY_CELL",
    "SECOND_BEST_ACCURACY_VALUE",
    "SHALLOW_CONV_HEAVY_CELL",
    "SurrogateAccuracyModel",
    "WIDTH_MULTIPLIERS",
    "add_vertex",
    "architecture_from_dict",
    "architecture_to_dict",
    "build_cell_layers",
    "build_network",
    "cell_fingerprint",
    "compute_metrics",
    "compute_vertex_channels",
    "count_parameters",
    "enumerate_cells",
    "expand_architecture",
    "flip_edge",
    "hash_graph",
    "mutate_cell",
    "mutate_macro",
    "mutate_macro_unique",
    "mutate_unique",
    "parameter_distribution",
    "permute_cell",
    "random_cell",
    "random_macro",
    "remove_vertex",
    "sample_unique_cells",
    "swap_op",
]
