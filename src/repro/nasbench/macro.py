"""Macro architecture search space: staged networks beyond the fixed backbone.

NASBench-101 freezes the macro-architecture — three stacks of three copies of
one cell, channel count doubling at each downsample — and searches only the
cell.  The hardware study wants the opposite freedom too: networks whose
*stages* differ (a distinct cell per stage, a per-stage depth, a per-stage
width schedule) stress the accelerator in ways no single-cell expansion can
(parameter-cache pressure from wide late stages, activation spill from deep
early stages).

:class:`MacroSpec` is that generalization: an ordered tuple of
:class:`StageSpec` entries (cell, depth, width multiplier) plus the stem and
classifier settings, validated on construction and content-fingerprinted like
:class:`~repro.nasbench.cell.Cell` so populations de-duplicate by identity.
The expansion rule is the strict superset of the legacy one — stage ``i``
enters through a 2x2 stride-2 downsample (except stage 0) and rescales the
running channel count by its width multiplier — so the legacy
:class:`~repro.nasbench.network.NetworkConfig` is exactly the trivial
macro spec (:meth:`MacroSpec.from_network_config`: one cell everywhere,
stage-0 multiplier 1, multiplier 2 after every downsample) and
:func:`~repro.nasbench.network.build_network` stays a thin wrapper producing
bit-for-bit identical layer lists.

The expanded layer list remains the single source of truth: everything
downstream (:class:`~repro.nasbench.layer_table.LayerTable`, the compiler,
the fused grid kernel) consumes :class:`~repro.nasbench.network.LayerSpec`
rows and needs no macro awareness beyond plumbing fingerprints through
dataset records, store keys and sweep manifests.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import InvalidCellError
from .cell import Cell
from .network import (
    KIND_CONV,
    KIND_DENSE,
    KIND_DOWNSAMPLE,
    KIND_GLOBAL_POOL,
    LayerSpec,
    NetworkConfig,
    NetworkSpec,
    build_cell_layers,
)

#: Most stages a macro spec may have (each stage past the first downsamples,
#: so deep schedules shrink the spatial grid fast; eight is already extreme
#: for 32x32 inputs and keeps random/mutated specs bounded).
MAX_STAGES = 8

#: Most cell repetitions within one stage.
MAX_STAGE_DEPTH = 16

#: Canonical width-multiplier ladder used by random sampling and the
#: width-step mutation.  Any positive multiplier is *valid* on a
#: :class:`StageSpec`; the ladder only discretizes the search moves.
WIDTH_MULTIPLIERS: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)

#: Largest accepted width multiplier (guards mutated/deserialized specs).
MAX_WIDTH_MULTIPLIER = 8.0


@dataclass(frozen=True)
class StageSpec:
    """One stage of a macro architecture: a cell, repeated, at a width.

    Parameters
    ----------
    cell:
        The cell expanded by every repetition of this stage.
    depth:
        Number of cell instances stacked in the stage (``cells_per_stack``
        of the legacy backbone).
    width_multiplier:
        Factor applied to the running channel count when the network enters
        this stage (the legacy backbone uses 1 for stage 0 and 2 afterwards).
    """

    cell: Cell
    depth: int = 3
    width_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if not isinstance(self.depth, int) or isinstance(self.depth, bool):
            raise InvalidCellError(
                f"stage depth must be an integer, got {self.depth!r}"
            )
        if not 1 <= self.depth <= MAX_STAGE_DEPTH:
            raise InvalidCellError(
                f"stage depth must be in [1, {MAX_STAGE_DEPTH}], got {self.depth}"
            )
        multiplier = self.width_multiplier
        if not isinstance(multiplier, (int, float)) or isinstance(multiplier, bool):
            raise InvalidCellError(
                f"stage width_multiplier must be a number, got {multiplier!r}"
            )
        if not math.isfinite(multiplier) or not 0.0 < multiplier <= MAX_WIDTH_MULTIPLIER:
            raise InvalidCellError(
                "stage width_multiplier must be a finite value in "
                f"(0, {MAX_WIDTH_MULTIPLIER}], got {multiplier!r}"
            )
        object.__setattr__(self, "width_multiplier", float(multiplier))

    def to_dict(self) -> dict:
        """JSON-serializable description of the stage."""
        return {
            "cell": self.cell.to_dict(),
            "depth": self.depth,
            "width_multiplier": self.width_multiplier,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StageSpec":
        """Reconstruct a stage from :meth:`to_dict` output."""
        return cls(
            cell=Cell.from_dict(payload["cell"]),
            depth=int(payload["depth"]),
            width_multiplier=float(payload["width_multiplier"]),
        )


@dataclass(frozen=True, eq=False)
class MacroSpec:
    """A staged macro architecture over NASBench cells.

    Follows the :class:`~repro.nasbench.cell.Cell` conventions: validated in
    a custom ``__init__`` (raising :class:`InvalidCellError` with the
    offending field named), hashable and comparable by a cached content
    :attr:`fingerprint` — over the *pruned* per-stage cell fingerprints, so
    two specs whose stage cells are isomorphic are the same model — and
    round-trippable through :meth:`to_dict` / :meth:`from_dict`.
    """

    stages: tuple[StageSpec, ...]
    stem_channels: int = 128
    image_size: int = 32
    image_channels: int = 3
    num_classes: int = 10
    _fingerprint: str | None = field(init=False, repr=False, compare=False)

    def __init__(
        self,
        stages,
        stem_channels: int = 128,
        image_size: int = 32,
        image_channels: int = 3,
        num_classes: int = 10,
    ):
        object.__setattr__(self, "stages", tuple(stages))
        object.__setattr__(self, "stem_channels", int(stem_channels))
        object.__setattr__(self, "image_size", int(image_size))
        object.__setattr__(self, "image_channels", int(image_channels))
        object.__setattr__(self, "num_classes", int(num_classes))
        object.__setattr__(self, "_fingerprint", None)
        self._validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if not self.stages:
            raise InvalidCellError("a macro spec needs at least one stage")
        if len(self.stages) > MAX_STAGES:
            raise InvalidCellError(
                f"macro spec has {len(self.stages)} stages, the maximum is {MAX_STAGES}"
            )
        for stage in self.stages:
            if not isinstance(stage, StageSpec):
                raise InvalidCellError(
                    f"macro stages must be StageSpec instances, got {type(stage).__name__}"
                )
        for name in ("stem_channels", "image_size", "image_channels", "num_classes"):
            if getattr(self, name) <= 0:
                raise InvalidCellError(
                    f"macro spec field {name} must be positive, got {getattr(self, name)}"
                )
        if self.image_size < 2 ** (len(self.stages) - 1):
            raise InvalidCellError(
                f"image size {self.image_size} too small for "
                f"{len(self.stages)} stages ({len(self.stages) - 1} downsamples)"
            )
        # Every stage must keep at least one channel after its rescale; the
        # rounding rule below clamps at one, so only validate the stem here.

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """Content fingerprint over pruned stage cells and the macro shape."""
        if self._fingerprint is None:
            payload = {
                "kind": "macro-spec",
                "stages": [
                    [stage.cell.fingerprint, stage.depth, stage.width_multiplier]
                    for stage in self.stages
                ],
                "stem_channels": self.stem_channels,
                "image_size": self.image_size,
                "image_channels": self.image_channels,
                "num_classes": self.num_classes,
            }
            text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            value = hashlib.sha256(text.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_fingerprint", value)
        return self._fingerprint

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MacroSpec):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    # ------------------------------------------------------------------ #
    # Shape queries
    # ------------------------------------------------------------------ #
    @property
    def num_stages(self) -> int:
        """Number of stages."""
        return len(self.stages)

    @property
    def total_cells(self) -> int:
        """Total cell instances across all stages."""
        return sum(stage.depth for stage in self.stages)

    @property
    def stage_channels(self) -> list[int]:
        """Channel count of each stage's cells, after its width rescale."""
        channels = self.stem_channels
        result = []
        for stage in self.stages:
            channels = max(1, int(round(channels * stage.width_multiplier)))
            result.append(channels)
        return result

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def build_layers(self) -> tuple[LayerSpec, ...]:
        """Expand the macro spec into its flat, topologically ordered layers.

        The loop is the legacy :func:`~repro.nasbench.network.build_network`
        expansion generalized per stage: a stem convolution, then each stage
        (downsample-on-entry except stage 0, width rescale, ``depth`` cell
        expansions), then the global-pool + dense head.  Layer naming is kept
        identical (``stack{i}/cell{j}``, ``stack{i}/downsample``) so single
        -cell specs reproduce the legacy layer lists bit for bit.
        """
        pruned = [stage.cell.prune() for stage in self.stages]

        layers: list[LayerSpec] = []
        height = width = self.image_size
        channels = self.stem_channels

        layers.append(
            LayerSpec(
                name="stem/conv3x3",
                kind=KIND_CONV,
                input_height=height,
                input_width=width,
                in_channels=self.image_channels,
                out_channels=channels,
                kernel_size=3,
                stride=1,
                has_batch_norm=True,
            )
        )

        in_channels = channels
        for stack_index, stage in enumerate(self.stages):
            if stack_index > 0:
                layers.append(
                    LayerSpec(
                        name=f"stack{stack_index}/downsample",
                        kind=KIND_DOWNSAMPLE,
                        input_height=height,
                        input_width=width,
                        in_channels=in_channels,
                        out_channels=in_channels,
                        kernel_size=2,
                        stride=2,
                    )
                )
                height = math.ceil(height / 2)
                width = math.ceil(width / 2)
            channels = max(1, int(round(channels * stage.width_multiplier)))

            for cell_index in range(stage.depth):
                prefix = f"stack{stack_index}/cell{cell_index}"
                layers.extend(
                    build_cell_layers(
                        pruned[stack_index], in_channels, channels, height, width, prefix
                    )
                )
                in_channels = channels

        layers.append(
            LayerSpec(
                name="head/global_pool",
                kind=KIND_GLOBAL_POOL,
                input_height=height,
                input_width=width,
                in_channels=in_channels,
                out_channels=in_channels,
            )
        )
        layers.append(
            LayerSpec(
                name="head/dense",
                kind=KIND_DENSE,
                input_height=1,
                input_width=1,
                in_channels=in_channels,
                out_channels=self.num_classes,
            )
        )
        return tuple(layers)

    def build_network(self) -> NetworkSpec:
        """Expand into a :class:`~repro.nasbench.network.NetworkSpec`.

        The spec's ``cell`` is the (pruned) first-stage cell and its
        ``config`` the nearest legacy description (stage count and first
        -stage depth); the ``layers`` tuple — the part every downstream
        consumer reads — is the exact staged expansion.
        """
        config = NetworkConfig(
            stem_channels=self.stem_channels,
            num_stacks=len(self.stages),
            cells_per_stack=self.stages[0].depth,
            image_size=self.image_size,
            image_channels=self.image_channels,
            num_classes=self.num_classes,
        )
        return NetworkSpec(
            cell=self.stages[0].cell.prune(),
            config=config,
            layers=self.build_layers(),
        )

    @property
    def representative_cell(self) -> Cell:
        """The pruned first-stage cell (accuracy surrogate / legacy fields)."""
        return self.stages[0].cell.prune()

    # ------------------------------------------------------------------ #
    # Legacy bridge
    # ------------------------------------------------------------------ #
    @classmethod
    def from_network_config(
        cls, cell: Cell, config: NetworkConfig | None = None
    ) -> "MacroSpec":
        """The trivial macro spec of the legacy single-cell expansion.

        Every stage carries the same (pruned) cell at the legacy depth;
        stage 0 keeps the stem width (multiplier 1) and every later stage
        doubles it (multiplier 2) — exactly the legacy channel schedule, so
        :meth:`build_layers` reproduces
        :func:`~repro.nasbench.network.build_network` bit for bit.
        """
        if config is None:
            config = NetworkConfig()
        pruned = cell.prune()
        stages = tuple(
            StageSpec(
                cell=pruned,
                depth=config.cells_per_stack,
                width_multiplier=1.0 if index == 0 else 2.0,
            )
            for index in range(config.num_stacks)
        )
        return cls(
            stages,
            stem_channels=config.stem_channels,
            image_size=config.image_size,
            image_channels=config.image_channels,
            num_classes=config.num_classes,
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Return a JSON-serializable description of the macro spec."""
        return {
            "stages": [stage.to_dict() for stage in self.stages],
            "stem_channels": self.stem_channels,
            "image_size": self.image_size,
            "image_channels": self.image_channels,
            "num_classes": self.num_classes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MacroSpec":
        """Reconstruct a macro spec from :meth:`to_dict` output."""
        return cls(
            tuple(StageSpec.from_dict(entry) for entry in payload["stages"]),
            stem_channels=int(payload["stem_channels"]),
            image_size=int(payload["image_size"]),
            image_channels=int(payload["image_channels"]),
            num_classes=int(payload["num_classes"]),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        shape = ", ".join(
            f"(d={stage.depth}, w={stage.width_multiplier:g})" for stage in self.stages
        )
        return f"MacroSpec(stages=[{shape}], stem={self.stem_channels})"


# ---------------------------------------------------------------------- #
# Dispatch and sampling helpers
# ---------------------------------------------------------------------- #
def expand_architecture(
    arch: Cell | MacroSpec, network_config: NetworkConfig | None = None
) -> NetworkSpec:
    """Expand either architecture form into its network.

    The single dispatch point the sweep executors share: a
    :class:`MacroSpec` carries its own macro settings and ignores
    *network_config*; a bare :class:`~repro.nasbench.cell.Cell` expands
    through the legacy backbone.
    """
    if isinstance(arch, MacroSpec):
        return arch.build_network()
    from .network import build_network  # deferred: network imports us lazily

    return build_network(arch, network_config)


def architecture_to_dict(arch: Cell | MacroSpec) -> dict:
    """Tagged JSON form of either architecture (see :func:`architecture_from_dict`)."""
    if isinstance(arch, MacroSpec):
        return {"kind": "macro", **arch.to_dict()}
    return {"kind": "cell", **arch.to_dict()}


def architecture_from_dict(payload: dict) -> Cell | MacroSpec:
    """Inverse of :func:`architecture_to_dict`; untagged payloads are cells
    (the pre-macro serialization format)."""
    kind = payload.get("kind", "cell")
    if kind == "macro":
        return MacroSpec.from_dict(payload)
    if kind == "cell":
        return Cell.from_dict(payload)
    raise InvalidCellError(f"unknown architecture kind {kind!r}")


def random_macro(
    rng: np.random.Generator,
    max_stages: int = 3,
    max_stage_depth: int = 3,
    max_vertices: int | None = None,
    max_edges: int | None = None,
    stem_channels: int = 128,
    image_size: int = 32,
    image_channels: int = 3,
    num_classes: int = 10,
) -> MacroSpec:
    """Draw one uniform random macro spec.

    Stage count and per-stage depth are uniform in ``[1, max]``, each stage's
    cell is an independent :func:`~repro.nasbench.generator.random_cell`, and
    width multipliers are drawn from the :data:`WIDTH_MULTIPLIERS` ladder.
    """
    from .generator import random_cell  # deferred: generator imports Cell only
    from .ops import MAX_EDGES, MAX_VERTICES

    max_vertices = MAX_VERTICES if max_vertices is None else max_vertices
    max_edges = MAX_EDGES if max_edges is None else max_edges
    num_stages = 1 + int(rng.integers(max_stages))
    stages = tuple(
        StageSpec(
            cell=random_cell(rng, max_vertices, max_edges),
            depth=1 + int(rng.integers(max_stage_depth)),
            width_multiplier=float(
                WIDTH_MULTIPLIERS[int(rng.integers(len(WIDTH_MULTIPLIERS)))]
            ),
        )
        for _ in range(num_stages)
    )
    return MacroSpec(
        stages,
        stem_channels=stem_channels,
        image_size=image_size,
        image_channels=image_channels,
        num_classes=num_classes,
    )
