"""Surrogate mean-validation-accuracy model for NASBench cells.

The original NASBench-101 dataset ships the CIFAR-10 training results of every
model (three training repeats at epochs 4, 12, 36 and 108).  Training 423K
convolutional networks is far outside the scope of this reproduction, so this
module provides a *deterministic surrogate*: a closed-form function of the
cell structure whose marginal statistics follow the facts the paper reports
and relies on:

* roughly 98.5% of models reach at least 70% mean validation accuracy after
  108 epochs, with a small population of failed runs near the 10% random
  baseline (Figure 12's red-star annotations);
* the best cell reaches 95.055% and the runner-up 94.895% (Figures 7 and 8);
* accuracy improves with more 3x3 convolutions and more trainable parameters,
  peaks at graph depth 3, and keeps improving with graph width up to 5
  (Figure 10);
* accuracies at earlier epochs are proportionally lower (epoch curve).

The surrogate is deterministic: the "training noise" component is derived from
the cell's isomorphism fingerprint, so repeated queries and different
processes agree on every value.

This is a documented substitution (see DESIGN.md §2); none of the paper's
latency/energy results depend on accuracy beyond filtering and annotation.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from .cell import Cell
from .famous_cells import (
    BEST_ACCURACY_CELL,
    BEST_ACCURACY_VALUE,
    SECOND_BEST_ACCURACY_CELL,
    SECOND_BEST_ACCURACY_VALUE,
)
from .graph_metrics import CellMetrics, compute_metrics
from .hashing import cell_fingerprint
from .params import count_parameters

#: Reported accuracies at the NASBench training epochs, as a fraction of the
#: epoch-108 accuracy.  Used to emulate the epoch-4/12/36 columns.
EPOCH_FRACTIONS: dict[int, float] = {4: 0.55, 12: 0.76, 36: 0.92, 108: 1.0}

#: Accuracy assigned to runs that diverge during training (CIFAR-10 has ten
#: classes, so a collapsed model predicts at chance level, ~10%).
FAILED_RUN_ACCURACY = 0.0947

#: Fraction of models whose training is considered to have failed.  The paper
#: keeps 98.5% of models after filtering at 70% accuracy, so ~1.5% fall below.
FAILURE_RATE = 0.013

#: Ceiling for generically generated cells; only the named best/second-best
#: cells may exceed it, keeping the global top-2 unique and equal to the
#: paper's 95.055% / 94.895%.
GENERIC_ACCURACY_CEILING = 0.9485


def _fingerprint_unit_interval(fingerprint: str, salt: str) -> float:
    """Map a fingerprint to a deterministic pseudo-uniform value in [0, 1)."""
    digest = hashlib.md5((salt + fingerprint).encode("utf-8")).hexdigest()
    return int(digest[:12], 16) / float(16**12)


@dataclass(frozen=True)
class AccuracyBreakdown:
    """Diagnostic decomposition of a surrogate accuracy value."""

    base: float
    conv3x3_term: float
    conv1x1_term: float
    maxpool_term: float
    depth_term: float
    width_term: float
    parameter_term: float
    noise_term: float
    failed: bool
    final: float


class SurrogateAccuracyModel:
    """Deterministic stand-in for NASBench-101 CIFAR-10 training results."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._best_fingerprint = cell_fingerprint(BEST_ACCURACY_CELL)
        self._second_fingerprint = cell_fingerprint(SECOND_BEST_ACCURACY_CELL)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def mean_validation_accuracy(
        self,
        cell: Cell,
        epochs: int = 108,
        fingerprint: str | None = None,
        metrics: CellMetrics | None = None,
        trainable_parameters: int | None = None,
    ) -> float:
        """Return the surrogate mean validation accuracy of *cell*.

        Passing a precomputed *fingerprint*, *metrics* or
        *trainable_parameters* avoids recomputation when the caller (for
        example :class:`repro.nasbench.dataset.NASBenchDataset`) already has
        them.
        """
        breakdown = self.explain(
            cell,
            fingerprint=fingerprint,
            metrics=metrics,
            trainable_parameters=trainable_parameters,
        )
        fraction = EPOCH_FRACTIONS.get(epochs)
        if fraction is None:
            raise ValueError(
                f"unsupported epoch count {epochs}; NASBench reports epochs "
                f"{sorted(EPOCH_FRACTIONS)}"
            )
        if breakdown.failed:
            return breakdown.final
        return round(breakdown.final * fraction, 6)

    def explain(
        self,
        cell: Cell,
        fingerprint: str | None = None,
        metrics: CellMetrics | None = None,
        trainable_parameters: int | None = None,
    ) -> AccuracyBreakdown:
        """Return the full additive decomposition of the epoch-108 accuracy."""
        fingerprint = fingerprint or cell_fingerprint(cell)

        # The two cells called out by the paper get their published values.
        if fingerprint == self._best_fingerprint:
            return self._exact(BEST_ACCURACY_VALUE)
        if fingerprint == self._second_fingerprint:
            return self._exact(SECOND_BEST_ACCURACY_VALUE)

        metrics = metrics or compute_metrics(cell)
        if trainable_parameters is None:
            trainable_parameters = count_parameters(cell)

        # A small, structure-biased population of training failures.
        failure_draw = _fingerprint_unit_interval(fingerprint, f"fail:{self._seed}")
        failure_threshold = FAILURE_RATE * (1.5 if metrics.depth >= 5 else 1.0)
        if metrics.num_operations == 0 or failure_draw < failure_threshold:
            noise = 0.01 * _fingerprint_unit_interval(fingerprint, f"failnoise:{self._seed}")
            value = round(FAILED_RUN_ACCURACY + noise, 6)
            return AccuracyBreakdown(0, 0, 0, 0, 0, 0, 0, 0, True, value)

        base = 0.893
        conv3x3_term = 0.030 * (1.0 - math.exp(-0.65 * metrics.num_conv3x3))
        conv1x1_term = 0.009 * (1.0 - math.exp(-0.65 * metrics.num_conv1x1))
        maxpool_term = -0.0035 * metrics.num_maxpool3x3
        depth_term = -0.0065 * ((metrics.depth - 3) ** 2) / 9.0
        width_term = 0.0045 * min(metrics.width, 5) / 5.0
        parameter_term = 0.010 * _squash_parameters(trainable_parameters)
        noise_term = 0.024 * (_fingerprint_unit_interval(fingerprint, f"noise:{self._seed}") - 0.5)

        value = (
            base
            + conv3x3_term
            + conv1x1_term
            + maxpool_term
            + depth_term
            + width_term
            + parameter_term
            + noise_term
        )
        value = min(max(value, 0.70), GENERIC_ACCURACY_CEILING)
        return AccuracyBreakdown(
            base,
            conv3x3_term,
            conv1x1_term,
            maxpool_term,
            depth_term,
            width_term,
            parameter_term,
            noise_term,
            False,
            round(value, 6),
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _exact(value: float) -> AccuracyBreakdown:
        return AccuracyBreakdown(value, 0, 0, 0, 0, 0, 0, 0, False, value)


def _squash_parameters(trainable_parameters: int) -> float:
    """Map a parameter count to [0, 1], saturating around 40M parameters."""
    if trainable_parameters <= 0:
        return 0.0
    low, high = math.log10(2.0e5), math.log10(4.0e7)
    value = (math.log10(trainable_parameters) - low) / (high - low)
    return min(max(value, 0.0), 1.0)
