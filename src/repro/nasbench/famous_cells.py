"""Named cells that appear explicitly in the paper's figures.

The paper highlights a handful of specific NASBench cells:

* Figure 7 — the cell with the highest mean validation accuracy after 108
  epochs (95.055%), built from four 3x3 convolutions.
* Figure 8 — the second-best cell (94.895%), built from two 3x3 convolutions
  and two 1x1 convolutions, with roughly 66% fewer parameters.
* Figure 13 — two cells with five 3x3 convolutions each: a shallow/wide one
  (depth 3) with the lowest latency and a deep chain (depth 6) with the
  highest latency on the V2 configuration.

The exact adjacency matrices are not published; the cells below are
reconstructed from the figures (operation multiset, edge count, and depth) and
are used by the benchmark harness and the surrogate accuracy model as the
canonical representatives of those figures.
"""

from __future__ import annotations

from .cell import Cell
from .ops import CONV1X1, CONV3X3, INPUT, OUTPUT

#: Figure 7: highest-accuracy cell (four 3x3 convolutions, nine edges).
BEST_ACCURACY_CELL = Cell(
    matrix=[
        # in c1 c2 c3 c4 out
        [0, 1, 1, 0, 0, 0],  # input -> c1, c2
        [0, 0, 1, 1, 1, 0],  # c1 -> c2, c3, c4
        [0, 0, 0, 1, 1, 0],  # c2 -> c3, c4
        [0, 0, 0, 0, 1, 0],  # c3 -> c4
        [0, 0, 0, 0, 0, 1],  # c4 -> output
        [0, 0, 0, 0, 0, 0],
    ],
    ops=[INPUT, CONV3X3, CONV3X3, CONV3X3, CONV3X3, OUTPUT],
)

#: Figure 7 reports 95.055% mean validation accuracy for the best cell.
BEST_ACCURACY_VALUE = 0.95055

#: Figure 8: second-best cell (two 3x3 and two 1x1 convolutions).
SECOND_BEST_ACCURACY_CELL = Cell(
    matrix=[
        # in v1 v2 v3 v4 out
        [0, 1, 1, 0, 0, 0],  # input -> v1, v2
        [0, 0, 1, 1, 1, 0],  # v1 -> v2, v3, v4
        [0, 0, 0, 1, 0, 0],  # v2 -> v3
        [0, 0, 0, 0, 1, 0],  # v3 -> v4
        [0, 0, 0, 0, 0, 1],  # v4 -> output
        [0, 0, 0, 0, 0, 0],
    ],
    ops=[INPUT, CONV1X1, CONV3X3, CONV3X3, CONV1X1, OUTPUT],
)

#: Figure 8 reports 94.895% mean validation accuracy for the second-best cell.
SECOND_BEST_ACCURACY_VALUE = 0.94895

#: Figure 13 (left): five 3x3 convolutions arranged shallow and wide (depth 3).
SHALLOW_CONV_HEAVY_CELL = Cell(
    matrix=[
        # in c1 c2 c3 c4 c5 out
        [0, 1, 0, 0, 0, 0, 0],  # input -> c1
        [0, 0, 1, 1, 1, 1, 0],  # c1 -> c2, c3, c4, c5
        [0, 0, 0, 0, 0, 0, 1],  # c2 -> output
        [0, 0, 0, 0, 0, 0, 1],  # c3 -> output
        [0, 0, 0, 0, 0, 0, 1],  # c4 -> output
        [0, 0, 0, 0, 0, 0, 1],  # c5 -> output
        [0, 0, 0, 0, 0, 0, 0],
    ],
    ops=[INPUT, CONV3X3, CONV3X3, CONV3X3, CONV3X3, CONV3X3, OUTPUT],
)

#: Figure 13 (right): five 3x3 convolutions in a chain (depth 6).
DEEP_CONV_HEAVY_CELL = Cell(
    matrix=[
        # in c1 c2 c3 c4 c5 out
        [0, 1, 0, 0, 0, 0, 0],
        [0, 0, 1, 0, 0, 0, 0],
        [0, 0, 0, 1, 0, 0, 0],
        [0, 0, 0, 0, 1, 0, 0],
        [0, 0, 0, 0, 0, 1, 0],
        [0, 0, 0, 0, 0, 0, 1],
        [0, 0, 0, 0, 0, 0, 0],
    ],
    ops=[INPUT, CONV3X3, CONV3X3, CONV3X3, CONV3X3, CONV3X3, OUTPUT],
)

#: All named cells keyed by a short identifier.
FAMOUS_CELLS: dict[str, Cell] = {
    "fig7_best_accuracy": BEST_ACCURACY_CELL,
    "fig8_second_best_accuracy": SECOND_BEST_ACCURACY_CELL,
    "fig13_shallow_conv_heavy": SHALLOW_CONV_HEAVY_CELL,
    "fig13_deep_conv_heavy": DEEP_CONV_HEAVY_CELL,
}
