"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidCellError(ReproError):
    """Raised when a NASBench cell specification violates the space rules.

    Examples include: too many vertices, too many edges, a cyclic adjacency
    matrix, an unknown operation label, or a graph with no path from the
    input vertex to the output vertex.
    """


class InvalidConfigError(ReproError):
    """Raised when an accelerator configuration is malformed.

    For example a non-positive clock frequency, a zero-sized PE array, or
    memory capacities that cannot hold a single tile.
    """


class BackendError(ReproError):
    """Raised when an explicitly requested array backend cannot be used.

    Only *explicit* requests raise — ``get_backend("numba")`` with no usable
    numba installation, or ``use_backend("cupy")`` without a GPU stack.  The
    ``REPRO_BACKEND`` environment variable never raises: an unset or garbage
    value falls back to the numpy backend with a single warning.
    """


class CompilationError(ReproError):
    """Raised when a network cannot be lowered or mapped onto an accelerator."""


class SimulationError(ReproError):
    """Raised when the performance simulator is given inconsistent inputs."""


class ModelError(ReproError):
    """Raised for failures in the learned performance model (shapes, training)."""


class DatasetError(ReproError):
    """Raised when dataset generation or querying fails."""


class PipelineError(ReproError):
    """Raised when an experiment pipeline is misconfigured or a cache is corrupt."""


class ServiceError(ReproError):
    """Raised by the measurement store / sweep service (missing shards, bad I/O)."""


class SearchError(ReproError):
    """Raised when an architecture search is misconfigured or cannot proceed.

    Examples include an unknown strategy name, a simulation store whose shard
    size does not align with the search's generation size, or an objective
    metric the target configuration cannot provide (energy on V3).
    """
