"""On-chip memory capacity helpers.

The Edge TPU compiler's parameter-caching optimization (Section 3 of the
paper) keeps model weights resident in on-chip SRAM across consecutive
inferences.  Weights are staged in the per-core parameter memories during
execution, but the much larger PE memories can hold the cached copies; the
planner therefore works with a single *parameter cache capacity* per
configuration: the whole core memory plus the fraction of PE memory not
reserved for activations and partial sums.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import AcceleratorConfig


@dataclass(frozen=True)
class MemoryBudget:
    """Capacity split of the on-chip SRAM for one compiled model."""

    #: Bytes of PE memory reserved for activations, partials and buffering.
    activation_reserve_bytes: int
    #: Bytes available for the cross-inference parameter cache.
    parameter_cache_bytes: int
    #: Aggregate core (parameter staging) memory.
    core_memory_bytes: int
    #: Aggregate PE (activation) memory.
    pe_memory_bytes: int


def activation_reserve_bytes(config: AcceleratorConfig, max_layer_activation_bytes):
    """Bytes of PE memory that must stay free for activations.

    The working set of a layer (inputs plus outputs) is double buffered so the
    next layer's inputs can stream in while the current layer executes.
    Elementwise: accepts one scalar (returning a plain ``int``) or an array of
    per-model maxima.
    """
    reserve = np.minimum(2 * max_layer_activation_bytes, config.total_pe_memory_bytes)
    return reserve if isinstance(reserve, np.ndarray) else int(reserve)


def _cacheable_pe_memory_bytes(config: AcceleratorConfig, reserve):
    """PE memory the compiler may devote to cached parameters (elementwise)."""
    return (
        np.maximum(0, config.total_pe_memory_bytes - reserve)
        * config.pe_memory_cache_fraction
    ).astype(np.int64)


def parameter_cache_bytes(config: AcceleratorConfig, max_layer_activation_bytes):
    """Parameter-cache capacity in bytes (elementwise over scalars or arrays).

    Single source of the capacity formula shared by the scalar
    :func:`parameter_cache_capacity` budget and the batch planner in
    :mod:`repro.compiler.param_cache`.
    """
    reserve = activation_reserve_bytes(config, max_layer_activation_bytes)
    return _cacheable_pe_memory_bytes(config, reserve) + config.total_core_memory_bytes


def parameter_cache_capacity(
    config: AcceleratorConfig, max_layer_activation_bytes: int = 0
) -> MemoryBudget:
    """Compute the memory budget available to the parameter-cache planner."""
    reserve = activation_reserve_bytes(config, max_layer_activation_bytes)
    cache_bytes = _cacheable_pe_memory_bytes(config, reserve) + config.total_core_memory_bytes
    return MemoryBudget(
        activation_reserve_bytes=int(reserve),
        parameter_cache_bytes=int(cache_bytes),
        core_memory_bytes=config.total_core_memory_bytes,
        pe_memory_bytes=config.total_pe_memory_bytes,
    )
