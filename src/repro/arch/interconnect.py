"""Sustained off-chip bandwidth model.

The paper attributes the small but consistent latency difference between V2
and V3 (same peak TOPS, same 32 GB/s I/O bandwidth) to their architectural
style: V2 spreads its compute over 16 PEs whereas V3 concentrates it in 4 PEs
with more cores each.  More PEs mean more independent requestors, more on-chip
interconnect bandwidth and less contention on shared memory ports, letting V2
sustain a larger fraction of the peak off-chip bandwidth.

The model here captures that first-order effect: the sustained bandwidth is
the peak I/O bandwidth scaled by an efficiency factor that saturates with the
number of PEs.

All functions are elementwise: they accept one scalar
:class:`~repro.arch.config.AcceleratorConfig` or a
:class:`~repro.arch.config_table.ConfigTable` whose columns broadcast, so the
same formulas serve the per-config and the config-axis vectorized paths.
"""

from __future__ import annotations

import numpy as np

from .config import AcceleratorConfig

#: Efficiency of a hypothetical single-PE design.  Sustained DRAM bandwidth on
#: edge devices is well below the peak interface rate: requests are small
#: (per-core weight tiles), partially random, and share the bus with
#: activation traffic and refresh.
_BASE_EFFICIENCY = 0.30
#: Efficiency approached by designs with many PEs (many outstanding
#: requestors keep the interface busier).
_MAX_EFFICIENCY = 0.46
#: Number of PEs at which roughly two thirds of the headroom is reached.
_SATURATION_PES = 6.0


def bandwidth_efficiency(num_pes):
    """Fraction of peak I/O bandwidth sustained by a design with *num_pes* PEs.

    Elementwise: accepts one PE count (returning a plain ``float``) or an
    array of per-configuration counts.
    """
    pes = np.asarray(num_pes, dtype=np.float64)
    if np.any(pes <= 0):
        raise ValueError("number of PEs must be positive")
    headroom = _MAX_EFFICIENCY - _BASE_EFFICIENCY
    efficiency = _BASE_EFFICIENCY + headroom * (1.0 - np.exp(-pes / _SATURATION_PES))
    return float(efficiency) if np.ndim(num_pes) == 0 else efficiency


def sustained_bandwidth_bytes_per_second(config: AcceleratorConfig):
    """Sustained off-chip bandwidth in bytes per second (elementwise)."""
    return config.io_bandwidth_bytes_per_second * bandwidth_efficiency(config.num_pes)


def sustained_bytes_per_cycle(config: AcceleratorConfig):
    """Sustained off-chip bandwidth in bytes per accelerator cycle (elementwise)."""
    return sustained_bandwidth_bytes_per_second(config) / config.clock_hz


def on_chip_bytes_per_cycle(config: AcceleratorConfig):
    """Aggregate on-chip (PE memory to core memory) bandwidth in bytes/cycle.

    Cached weights are copied from the PE-memory parameter cache into the
    per-core staging memories each time a layer executes; every core pulls its
    own weight slice through a 16-byte port, so the aggregate refill bandwidth
    scales with the total number of cores.  The value only matters for models
    whose weights are (mostly) resident on-chip — for streamed models the
    off-chip bandwidth dominates.
    """
    return 16.0 * config.total_cores
