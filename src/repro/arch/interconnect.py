"""Sustained off-chip bandwidth model.

The paper attributes the small but consistent latency difference between V2
and V3 (same peak TOPS, same 32 GB/s I/O bandwidth) to their architectural
style: V2 spreads its compute over 16 PEs whereas V3 concentrates it in 4 PEs
with more cores each.  More PEs mean more independent requestors, more on-chip
interconnect bandwidth and less contention on shared memory ports, letting V2
sustain a larger fraction of the peak off-chip bandwidth.

The model here captures that first-order effect: the sustained bandwidth is
the peak I/O bandwidth scaled by an efficiency factor that saturates with the
number of PEs.
"""

from __future__ import annotations

import math

from .config import AcceleratorConfig

#: Efficiency of a hypothetical single-PE design.  Sustained DRAM bandwidth on
#: edge devices is well below the peak interface rate: requests are small
#: (per-core weight tiles), partially random, and share the bus with
#: activation traffic and refresh.
_BASE_EFFICIENCY = 0.30
#: Efficiency approached by designs with many PEs (many outstanding
#: requestors keep the interface busier).
_MAX_EFFICIENCY = 0.46
#: Number of PEs at which roughly two thirds of the headroom is reached.
_SATURATION_PES = 6.0


def bandwidth_efficiency(num_pes: int) -> float:
    """Fraction of peak I/O bandwidth sustained by a design with *num_pes* PEs."""
    if num_pes <= 0:
        raise ValueError("number of PEs must be positive")
    headroom = _MAX_EFFICIENCY - _BASE_EFFICIENCY
    return _BASE_EFFICIENCY + headroom * (1.0 - math.exp(-num_pes / _SATURATION_PES))


def sustained_bandwidth_bytes_per_second(config: AcceleratorConfig) -> float:
    """Sustained off-chip bandwidth of *config* in bytes per second."""
    return config.io_bandwidth_bytes_per_second * bandwidth_efficiency(config.num_pes)


def sustained_bytes_per_cycle(config: AcceleratorConfig) -> float:
    """Sustained off-chip bandwidth of *config* in bytes per accelerator cycle."""
    return sustained_bandwidth_bytes_per_second(config) / config.clock_hz


def on_chip_bytes_per_cycle(config: AcceleratorConfig) -> float:
    """Aggregate on-chip (PE memory to core memory) bandwidth in bytes/cycle.

    Cached weights are copied from the PE-memory parameter cache into the
    per-core staging memories each time a layer executes; every core pulls its
    own weight slice through a 16-byte port, so the aggregate refill bandwidth
    scales with the total number of cores.  The value only matters for models
    whose weights are (mostly) resident on-chip — for streamed models the
    off-chip bandwidth dominates.
    """
    return 16.0 * config.total_cores
