"""Accelerator configurations for the three studied Edge TPU classes.

Table 2 of the paper lists the microarchitectural parameters of the three
accelerator classes (V1, V2, V3).  :class:`AcceleratorConfig` captures every
one of those fields, validates them, and exposes the derived quantities used
by the compiler and the performance model (MACs per cycle, peak TOPS, total
on-chip capacities).

The per-lane MAC width is not listed explicitly in the paper, but it follows
from the published peak TOPS: for every class,
``peak TOPS = 2 * PEs * cores * lanes * macs_per_lane * clock`` holds exactly
with ``macs_per_lane = 4`` (e.g. V1: 2 * 16 * 4 * 64 * 4 * 800 MHz =
26.2 TOPS), so 4-way MAC units are used as the default.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from ..errors import InvalidConfigError

KIB = 1024
MIB = 1024 * 1024


def scaled_bytes(byte_counts, bits):
    """``ceil(bytes * bits / 8)``: rescale canonical int8 byte footprints.

    Pure integer arithmetic (no float round-trip), elementwise over arrays and
    exact under broadcasting, so the scalar and ``(C, L)`` table kernels agree
    bit for bit.  At 8 bits this is the identity.
    """
    return -(-(byte_counts * bits) // 8)


@dataclass(frozen=True)
class AcceleratorConfig:
    """Microarchitectural description of one Edge TPU accelerator class.

    Attributes mirror Table 2 of the paper; memory sizes are stored in bytes.
    """

    name: str
    clock_mhz: float
    pes_x: int
    pes_y: int
    pe_memory_bytes: int
    cores_per_pe: int
    core_memory_bytes: int
    compute_lanes: int
    macs_per_lane: int = 4
    instruction_memory_entries: int = 16384
    parameter_memory_entries: int = 16384
    activation_memory_entries: int = 1024
    io_bandwidth_gbps: float = 17.0
    #: Fraction of PE memory the compiler may devote to the cross-inference
    #: parameter cache; the rest is reserved for activations, partial sums and
    #: double buffering.
    pe_memory_cache_fraction: float = 0.5
    #: Fixed per-inference overhead (host synchronization, input/output DMA
    #: setup, instruction fetch), in accelerator cycles.
    inference_overhead_cycles: int = 36_000
    #: Fixed per-layer overhead (descriptor dispatch, weight-staging setup,
    #: pipeline fill/drain), in accelerator cycles.
    layer_overhead_cycles: int = 300
    #: Images processed per batched inference.  Batching multiplies compute
    #: and activation traffic while weight fetch (DRAM streaming and cache
    #: refill) is paid once per batch, so larger batches amortize it.
    batch_size: int = 1
    #: Storage width of weights in bits.  Weight footprints (cache pressure,
    #: streamed DRAM traffic, SRAM staging) scale as ``ceil(bytes * bits / 8)``
    #: from the canonical int8 layer footprints.
    weight_bits: int = 8
    #: Storage width of activations in bits; scales activation footprints
    #: (spill working sets, model I/O, SRAM activation traffic) the same way.
    activation_bits: int = 8

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise InvalidConfigError(f"{self.name}: clock frequency must be positive")
        if self.pes_x <= 0 or self.pes_y <= 0:
            raise InvalidConfigError(f"{self.name}: PE grid dimensions must be positive")
        if self.cores_per_pe <= 0 or self.compute_lanes <= 0 or self.macs_per_lane <= 0:
            raise InvalidConfigError(f"{self.name}: compute resources must be positive")
        if self.pe_memory_bytes <= 0 or self.core_memory_bytes <= 0:
            raise InvalidConfigError(f"{self.name}: memory capacities must be positive")
        if self.io_bandwidth_gbps <= 0:
            raise InvalidConfigError(f"{self.name}: I/O bandwidth must be positive")
        if not 0.0 <= self.pe_memory_cache_fraction <= 1.0:
            raise InvalidConfigError(f"{self.name}: pe_memory_cache_fraction must be within [0, 1]")
        if self.batch_size < 1:
            raise InvalidConfigError(f"{self.name}: batch_size must be at least 1")
        for field_name in ("weight_bits", "activation_bits"):
            bits = getattr(self, field_name)
            if not 1 <= bits <= 32:
                raise InvalidConfigError(f"{self.name}: {field_name} must be within [1, 32]")

    # ------------------------------------------------------------------ #
    # Derived compute quantities
    # ------------------------------------------------------------------ #
    @property
    def num_pes(self) -> int:
        """Total number of processing elements in the 2D array."""
        return self.pes_x * self.pes_y

    @property
    def total_cores(self) -> int:
        """Total number of compute cores across all PEs."""
        return self.num_pes * self.cores_per_pe

    @property
    def clock_hz(self) -> float:
        """System clock in Hz."""
        return self.clock_mhz * 1e6

    @property
    def macs_per_cycle(self) -> int:
        """Peak multiply-accumulate operations per cycle across the chip."""
        return self.total_cores * self.compute_lanes * self.macs_per_lane

    @property
    def peak_tops(self) -> float:
        """Peak tera-operations per second (1 MAC = 2 ops)."""
        return 2.0 * self.macs_per_cycle * self.clock_hz / 1e12

    # ------------------------------------------------------------------ #
    # Derived memory quantities
    # ------------------------------------------------------------------ #
    @property
    def total_pe_memory_bytes(self) -> int:
        """Aggregate PE (activation) memory across the chip."""
        return self.pe_memory_bytes * self.num_pes

    @property
    def total_core_memory_bytes(self) -> int:
        """Aggregate core (parameter) memory across the chip."""
        return self.core_memory_bytes * self.total_cores

    @property
    def total_on_chip_memory_bytes(self) -> int:
        """All on-chip SRAM: PE memory plus core memory."""
        return self.total_pe_memory_bytes + self.total_core_memory_bytes

    @property
    def io_bandwidth_bytes_per_second(self) -> float:
        """Peak off-chip bandwidth in bytes per second."""
        return self.io_bandwidth_gbps * 1e9

    @property
    def io_bytes_per_cycle(self) -> float:
        """Peak off-chip bandwidth expressed in bytes per accelerator cycle."""
        return self.io_bandwidth_bytes_per_second / self.clock_hz

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def with_overrides(self, **overrides: object) -> "AcceleratorConfig":
        """Return a copy of the configuration with some fields replaced.

        This is the hook used for architecture exploration (for example the
        tile-size ablation discussed in Section 6.1 of the paper, and the
        :class:`~repro.hwspace.AcceleratorSpace` design-space grids).

        Raises
        ------
        InvalidConfigError
            If an override names a field :class:`AcceleratorConfig` does not
            have, or if the resulting configuration violates an invariant.
        """
        known = {spec.name for spec in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise InvalidConfigError(
                f"{self.name}: unknown configuration field(s) "
                f"{', '.join(repr(name) for name in unknown)}; valid fields are "
                f"{', '.join(sorted(known))}"
            )
        return replace(self, **overrides)

    def summary(self) -> dict[str, object]:
        """Return the Table 2 style description of this configuration."""
        return {
            "name": self.name,
            "clock_mhz": self.clock_mhz,
            "pes": f"({self.pes_x}, {self.pes_y})",
            "pe_memory_bytes": self.pe_memory_bytes,
            "cores_per_pe": self.cores_per_pe,
            "core_memory_bytes": self.core_memory_bytes,
            "compute_lanes": self.compute_lanes,
            "instruction_memory_entries": self.instruction_memory_entries,
            "parameter_memory_entries": self.parameter_memory_entries,
            "activation_memory_entries": self.activation_memory_entries,
            "io_bandwidth_gbps": self.io_bandwidth_gbps,
            "peak_tops": round(self.peak_tops, 2),
        }


#: Table 2, configuration V1: high peak TOPS, large on-chip memory, lower
#: clock and I/O bandwidth.  Deployed-class accelerator.
EDGE_TPU_V1 = AcceleratorConfig(
    name="V1",
    clock_mhz=800.0,
    pes_x=4,
    pes_y=4,
    pe_memory_bytes=2 * MIB,
    cores_per_pe=4,
    core_memory_bytes=32 * KIB,
    compute_lanes=64,
    instruction_memory_entries=16384,
    parameter_memory_entries=16384,
    activation_memory_entries=1024,
    io_bandwidth_gbps=17.0,
)

#: Table 2, configuration V2: low peak TOPS with small on-chip memory but
#: high I/O bandwidth.
EDGE_TPU_V2 = AcceleratorConfig(
    name="V2",
    clock_mhz=1066.0,
    pes_x=4,
    pes_y=4,
    pe_memory_bytes=384 * KIB,
    cores_per_pe=1,
    core_memory_bytes=32 * KIB,
    compute_lanes=64,
    instruction_memory_entries=16384,
    parameter_memory_entries=8192,
    activation_memory_entries=1024,
    io_bandwidth_gbps=32.0,
)

#: Table 2, configuration V3: low peak TOPS with large on-chip memory,
#: fewer PEs but more cores per PE.
EDGE_TPU_V3 = AcceleratorConfig(
    name="V3",
    clock_mhz=1066.0,
    pes_x=4,
    pes_y=1,
    pe_memory_bytes=2 * MIB,
    cores_per_pe=8,
    core_memory_bytes=8 * KIB,
    compute_lanes=32,
    instruction_memory_entries=16384,
    parameter_memory_entries=8192,
    activation_memory_entries=1024,
    io_bandwidth_gbps=32.0,
)

#: The three studied accelerator classes, keyed by name.
STUDIED_CONFIGS: dict[str, AcceleratorConfig] = {
    "V1": EDGE_TPU_V1,
    "V2": EDGE_TPU_V2,
    "V3": EDGE_TPU_V3,
}


def get_config(name: str) -> AcceleratorConfig:
    """Look up one of the studied configurations by name (``"V1"``/``"V2"``/``"V3"``)."""
    try:
        return STUDIED_CONFIGS[name.upper()]
    except KeyError as exc:
        raise InvalidConfigError(
            f"unknown accelerator configuration {name!r}; expected one of "
            f"{sorted(STUDIED_CONFIGS)}"
        ) from exc
