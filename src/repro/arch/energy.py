"""Energy model parameters for the studied Edge TPU classes.

The paper reports total inference energy for the V1 and V2 configurations (the
V3 energy model was not available at submission time).  The energy model used
here is a standard accelerator decomposition:

``E = E_mac * MACs  +  E_idle * idle_lane_cycles  +  E_sram * on_chip_bytes
      +  E_dram * off_chip_bytes  +  P_static * latency``

* ``E_mac`` — switching energy of one useful int8 multiply-accumulate,
  including its share of datapath/control overhead.  V1 runs at a lower clock
  (800 MHz vs 1066 MHz) and therefore a lower voltage point, so its per-MAC
  energy is slightly lower.
* ``E_idle`` — clocking energy of an unoccupied MAC lane-slot.  This term is
  what makes a wide accelerator (V1) less energy efficient than a narrow one
  (V2) on models that cannot fill it, reproducing the low-latency half of
  Figure 6, while highly utilized large models amortize it away.
* ``E_sram`` / ``E_dram`` — per-byte access energies; DRAM traffic is roughly
  two orders of magnitude more expensive, which is why parameter caching wins
  back energy on the large models (the high-latency half of Figure 6).
* ``P_static`` — leakage plus always-on clocking, proportional to the amount
  of compute and SRAM on the die.

The constants are calibrated so the magnitudes land in the paper's range
(average ~4 mJ, maximum ~24 mJ) and the V1/V2 crossover sits near 3 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .config import MIB, AcceleratorConfig


@dataclass(frozen=True)
class EnergyParameters:
    """Per-configuration energy coefficients (pJ per event, W for static)."""

    mac_energy_pj: float
    idle_lane_energy_pj: float
    sram_byte_energy_pj: float
    dram_byte_energy_pj: float
    static_power_w: float
    #: Whether the paper published an energy model for this configuration.
    available: bool = True

    def __post_init__(self) -> None:
        if min(
            self.mac_energy_pj,
            self.idle_lane_energy_pj,
            self.sram_byte_energy_pj,
            self.dram_byte_energy_pj,
            self.static_power_w,
        ) < 0:
            raise ValueError("energy coefficients must be non-negative")


#: Per-byte DRAM access energy (LPDDR4-class interface).
_DRAM_BYTE_PJ = 40.0
#: Per-byte on-chip SRAM access energy.
_SRAM_BYTE_PJ = 1.0
#: Switching energy of a useful int8 MAC including its datapath share.
_MAC_PJ = 3.2
#: Clocking energy of an idle MAC lane-slot.
_IDLE_LANE_PJ = 3.0


def energy_parameters_for(config: AcceleratorConfig) -> EnergyParameters:
    """Derive :class:`EnergyParameters` for an accelerator configuration.

    The dynamic per-event coefficients are technology constants shared by all
    configurations; the static power scales with the amount of compute (and
    its clock/voltage point) and SRAM on the die, so custom configurations
    created with :meth:`AcceleratorConfig.with_overrides` also receive
    sensible values.  The V3 energy model is marked unavailable to mirror the
    paper.
    """
    # Voltage/frequency scaling proxy: 800 MHz -> 1.0, 1066 MHz -> ~1.18.
    frequency_factor = 0.45 + 0.55 * (config.clock_mhz / 800.0)

    compute_static = 4e-6 * config.macs_per_cycle * frequency_factor
    sram_static = 0.002 * (config.total_on_chip_memory_bytes / MIB)
    static_power = 0.04 + compute_static + sram_static

    return EnergyParameters(
        mac_energy_pj=_MAC_PJ,
        idle_lane_energy_pj=_IDLE_LANE_PJ,
        sram_byte_energy_pj=_SRAM_BYTE_PJ,
        dram_byte_energy_pj=_DRAM_BYTE_PJ,
        static_power_w=static_power,
        available=config.name.upper() != "V3",
    )


@dataclass(frozen=True)
class EnergyTable:
    """Per-configuration energy coefficients as ``(num_configs, 1)`` columns.

    The config-axis analogue of :class:`EnergyParameters`: the coefficient
    attribute names match, so the energy kernels in
    :mod:`repro.simulator.energy` broadcast over either form unchanged.
    ``available`` is the per-config availability mask (shape
    ``(num_configs,)``); rows without a published energy model are masked to
    NaN by the batch engine after the shared arithmetic.
    """

    mac_energy_pj: np.ndarray
    idle_lane_energy_pj: np.ndarray
    sram_byte_energy_pj: np.ndarray
    dram_byte_energy_pj: np.ndarray
    static_power_w: np.ndarray
    available: np.ndarray


def energy_parameters_table(configs: Iterable[AcceleratorConfig]) -> EnergyTable:
    """Stack :func:`energy_parameters_for` over a batch of configurations.

    Each coefficient becomes a ``(num_configs, 1)`` column built from the
    scalar derivation, so the config-axis energy path reuses the per-config
    values verbatim.
    """
    params = [energy_parameters_for(config) for config in configs]

    def column(attribute: str) -> np.ndarray:
        return np.array([getattr(p, attribute) for p in params], dtype=np.float64)[:, None]

    return EnergyTable(
        mac_energy_pj=column("mac_energy_pj"),
        idle_lane_energy_pj=column("idle_lane_energy_pj"),
        sram_byte_energy_pj=column("sram_byte_energy_pj"),
        dram_byte_energy_pj=column("dram_byte_energy_pj"),
        static_power_w=column("static_power_w"),
        available=np.array([p.available for p in params], dtype=bool),
    )
