"""Structure-of-arrays batch of accelerator configurations.

The batch engine of PR 1 made the *layer* axis an array axis: one
:class:`~repro.nasbench.layer_table.LayerTable` row per layer, kernels as
NumPy arithmetic over the whole population.  :class:`ConfigTable` does the
same for the *configuration* axis.  Every :class:`AcceleratorConfig` field
and derived quantity is stored as a column of shape ``(num_configs, 1)``, so
the existing compiler and simulator kernels — written against the scalar
attribute names — broadcast against the layer axis and produce
``(num_configs, num_layers)`` results in a single pass instead of being
re-run once per configuration.

The derived columns use exactly the same formulas as the corresponding
:class:`AcceleratorConfig` properties over the same integer/float values, so
the config-axis path is bit-for-bit the per-config loop (the equivalence
tests assert exact equality, not a tolerance).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import InvalidConfigError
from .config import AcceleratorConfig

#: AcceleratorConfig fields stored as int64 columns.
_INT_FIELDS = (
    "pes_x",
    "pes_y",
    "pe_memory_bytes",
    "cores_per_pe",
    "core_memory_bytes",
    "compute_lanes",
    "macs_per_lane",
    "instruction_memory_entries",
    "parameter_memory_entries",
    "activation_memory_entries",
    "inference_overhead_cycles",
    "layer_overhead_cycles",
    "batch_size",
    "weight_bits",
    "activation_bits",
)

#: AcceleratorConfig fields stored as float64 columns.
_FLOAT_FIELDS = ("clock_mhz", "io_bandwidth_gbps", "pe_memory_cache_fraction")


class ConfigTable:
    """Aligned per-configuration columns for a batch of accelerator configs.

    Each column has shape ``(num_configs, 1)`` — the trailing singleton axis
    is what lets a column broadcast against layer-aligned ``(num_layers,)``
    arrays inside the compiler/simulator kernels.  The original
    :class:`AcceleratorConfig` objects stay reachable through
    :attr:`configs` / :meth:`row` for anything that needs scalar access
    (energy-model availability, names, reporting).
    """

    def __init__(self, configs: Iterable[AcceleratorConfig]):
        resolved = tuple(configs)
        if not resolved:
            raise InvalidConfigError("a ConfigTable needs at least one configuration")
        names = [config.name for config in resolved]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise InvalidConfigError(
                "configuration names must be unique within a ConfigTable "
                f"(duplicated: {', '.join(duplicates)}); results are keyed by name"
            )
        self.configs = resolved
        self.names = names
        for field in _INT_FIELDS:
            values = np.array([getattr(c, field) for c in resolved], dtype=np.int64)
            setattr(self, field, values[:, None])
        for field in _FLOAT_FIELDS:
            values = np.array([getattr(c, field) for c in resolved], dtype=np.float64)
            setattr(self, field, values[:, None])

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @classmethod
    def from_configs(
        cls, configs: "Iterable[AcceleratorConfig] | ConfigTable"
    ) -> "ConfigTable":
        """Coerce a configuration iterable (or an existing table) to a table."""
        if isinstance(configs, cls):
            return configs
        return cls(configs)

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self) -> Iterator[AcceleratorConfig]:
        return iter(self.configs)

    def row(self, index: int) -> AcceleratorConfig:
        """The scalar configuration of one row."""
        return self.configs[index]

    def factor(self, field_names: Sequence[str]) -> "tuple[ConfigTable, np.ndarray]":
        """Deduplicate rows by a subset of fields: ``(unique_table, inverse)``.

        A kernel that only reads *field_names* produces identical rows for
        configurations agreeing on them, so it can run on the returned
        (smaller) table and gather its output back through *inverse*
        (``len(self)`` indices into the unique table).  On a design-space
        grid this collapses whole axes: a clock sweep never re-runs the
        mapping kernel, a lane sweep never re-runs the cache planner.
        """
        first_row: dict[tuple, int] = {}
        inverse = np.empty(len(self.configs), dtype=np.int64)
        representatives: list[AcceleratorConfig] = []
        for index, config in enumerate(self.configs):
            key = tuple(getattr(config, name) for name in field_names)
            position = first_row.get(key)
            if position is None:
                position = len(representatives)
                first_row[key] = position
                representatives.append(config)
            inverse[index] = position
        if len(representatives) == len(self.configs):
            return self, inverse
        return ConfigTable(representatives), inverse

    @property
    def num_configs(self) -> int:
        """Number of configuration rows."""
        return len(self.configs)

    # ------------------------------------------------------------------ #
    # Derived compute quantities (same formulas as AcceleratorConfig)
    # ------------------------------------------------------------------ #
    @property
    def num_pes(self) -> np.ndarray:
        """Per-config total number of processing elements, shape ``(C, 1)``."""
        return self.pes_x * self.pes_y

    @property
    def total_cores(self) -> np.ndarray:
        """Per-config total number of compute cores, shape ``(C, 1)``."""
        return self.num_pes * self.cores_per_pe

    @property
    def clock_hz(self) -> np.ndarray:
        """Per-config system clock in Hz, shape ``(C, 1)``."""
        return self.clock_mhz * 1e6

    @property
    def macs_per_cycle(self) -> np.ndarray:
        """Per-config peak MACs per cycle, shape ``(C, 1)``."""
        return self.total_cores * self.compute_lanes * self.macs_per_lane

    @property
    def peak_tops(self) -> np.ndarray:
        """Per-config peak tera-operations per second, shape ``(C, 1)``."""
        return 2.0 * self.macs_per_cycle * self.clock_hz / 1e12

    # ------------------------------------------------------------------ #
    # Derived memory quantities
    # ------------------------------------------------------------------ #
    @property
    def total_pe_memory_bytes(self) -> np.ndarray:
        """Per-config aggregate PE memory, shape ``(C, 1)``."""
        return self.pe_memory_bytes * self.num_pes

    @property
    def total_core_memory_bytes(self) -> np.ndarray:
        """Per-config aggregate core memory, shape ``(C, 1)``."""
        return self.core_memory_bytes * self.total_cores

    @property
    def total_on_chip_memory_bytes(self) -> np.ndarray:
        """Per-config total on-chip SRAM, shape ``(C, 1)``."""
        return self.total_pe_memory_bytes + self.total_core_memory_bytes

    @property
    def io_bandwidth_bytes_per_second(self) -> np.ndarray:
        """Per-config peak off-chip bandwidth in B/s, shape ``(C, 1)``."""
        return self.io_bandwidth_gbps * 1e9

    @property
    def io_bytes_per_cycle(self) -> np.ndarray:
        """Per-config peak off-chip bytes per cycle, shape ``(C, 1)``."""
        return self.io_bandwidth_bytes_per_second / self.clock_hz
