"""Edge TPU architecture substrate: configurations, memory and energy models."""

from .config import (
    EDGE_TPU_V1,
    EDGE_TPU_V2,
    EDGE_TPU_V3,
    KIB,
    MIB,
    STUDIED_CONFIGS,
    AcceleratorConfig,
    get_config,
)
from .energy import EnergyParameters, energy_parameters_for
from .interconnect import (
    bandwidth_efficiency,
    on_chip_bytes_per_cycle,
    sustained_bandwidth_bytes_per_second,
    sustained_bytes_per_cycle,
)
from .memory import MemoryBudget, activation_reserve_bytes, parameter_cache_capacity

__all__ = [
    "AcceleratorConfig",
    "EDGE_TPU_V1",
    "EDGE_TPU_V2",
    "EDGE_TPU_V3",
    "EnergyParameters",
    "KIB",
    "MIB",
    "MemoryBudget",
    "STUDIED_CONFIGS",
    "activation_reserve_bytes",
    "bandwidth_efficiency",
    "energy_parameters_for",
    "get_config",
    "on_chip_bytes_per_cycle",
    "parameter_cache_capacity",
    "sustained_bandwidth_bytes_per_second",
    "sustained_bytes_per_cycle",
]
