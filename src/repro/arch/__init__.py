"""Edge TPU architecture substrate: configurations, memory and energy models."""

from .config import (
    EDGE_TPU_V1,
    EDGE_TPU_V2,
    EDGE_TPU_V3,
    KIB,
    MIB,
    STUDIED_CONFIGS,
    AcceleratorConfig,
    get_config,
)
from .config_table import ConfigTable
from .energy import (
    EnergyParameters,
    EnergyTable,
    energy_parameters_for,
    energy_parameters_table,
)
from .interconnect import (
    bandwidth_efficiency,
    on_chip_bytes_per_cycle,
    sustained_bandwidth_bytes_per_second,
    sustained_bytes_per_cycle,
)
from .memory import MemoryBudget, activation_reserve_bytes, parameter_cache_capacity

__all__ = [
    "AcceleratorConfig",
    "ConfigTable",
    "EDGE_TPU_V1",
    "EDGE_TPU_V2",
    "EDGE_TPU_V3",
    "EnergyParameters",
    "EnergyTable",
    "KIB",
    "MIB",
    "MemoryBudget",
    "STUDIED_CONFIGS",
    "activation_reserve_bytes",
    "bandwidth_efficiency",
    "energy_parameters_for",
    "energy_parameters_table",
    "get_config",
    "on_chip_bytes_per_cycle",
    "parameter_cache_capacity",
    "sustained_bandwidth_bytes_per_second",
    "sustained_bytes_per_cycle",
]
