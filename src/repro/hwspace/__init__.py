"""Accelerator design-space exploration.

The hardware axis of the paper as a subsystem: validated configuration grids
(:class:`AcceleratorSpace`), population-level hardware Pareto analysis
(:class:`HardwareFrontier`, performance vs. derived cost proxies) and joint
NAS × hardware co-search (:class:`CoSearchEngine`), all running on the
config-axis vectorized sweep of
:meth:`~repro.simulator.batch.BatchSimulator.evaluate_table_grid` and
persisting through :class:`~repro.service.MeasurementStore` shards keyed by
each configuration's content digest (DESIGN.md §8).
"""

from .cosearch import (
    CoSearchEngine,
    CoSearchResult,
    CoSearchSpec,
    PairRecord,
    pair_key,
    studied_baselines,
)
from .frontier import (
    COST_PROXIES,
    PERFORMANCE_METRICS,
    ConfigPoint,
    HardwareFrontier,
    SensitivityPoint,
)
from .space import SEARCHABLE_FIELDS, AcceleratorSpace, config_digest

__all__ = [
    "AcceleratorSpace",
    "COST_PROXIES",
    "CoSearchEngine",
    "CoSearchResult",
    "CoSearchSpec",
    "ConfigPoint",
    "HardwareFrontier",
    "PERFORMANCE_METRICS",
    "PairRecord",
    "SEARCHABLE_FIELDS",
    "SensitivityPoint",
    "config_digest",
    "pair_key",
    "studied_baselines",
]
