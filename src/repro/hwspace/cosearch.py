"""Joint NAS × hardware co-search over cells and accelerator configurations.

:mod:`repro.search` optimizes the *model* for a frozen accelerator; the
hardware frontier ranks *accelerators* over a frozen population.  The
co-design question the paper points at — which (model, microarchitecture)
pairs are jointly optimal — needs both axes searched under one budget.
:class:`CoSearchEngine` runs regularized evolution over **pairs**: a
tournament picks a parent pair, and each child either mutates the cell
(:func:`~repro.nasbench.mutation.mutate_unique`, hardware kept) or takes one
hardware grid step (:meth:`~repro.hwspace.space.AcceleratorSpace.neighbors`,
cell kept).  Every generation is evaluated in **one config-axis vectorized
pass** (:meth:`~repro.simulator.batch.BatchSimulator.evaluate_table_grid`
over the generation's distinct configurations), selection uses the same
soft feasibility penalty as the cell-only engine, and a
:class:`~repro.analysis.ParetoArchive` keyed by ``fingerprint@config-digest``
tracks the joint (cost ↓, accuracy ↑) frontier.

The simulation budget — ``population_size × generations`` pair evaluations —
matches a fixed-hardware :class:`~repro.search.SearchEngine` run with the
same parameters, which is what makes :func:`studied_baselines` a fair
comparison: the co-search should discover pairs that Pareto-dominate at
least one of the V1/V2/V3 single-axis winners at equal cost.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..analysis.archive import ParetoArchive
from ..arch.config import AcceleratorConfig
from ..errors import DatasetError, SearchError
from ..nasbench.accuracy import SurrogateAccuracyModel
from ..nasbench.cell import Cell
from ..nasbench.generator import random_cell
from ..nasbench.graph_metrics import compute_metrics
from ..nasbench.layer_table import LayerTable
from ..nasbench.macro import MacroSpec, expand_architecture, random_macro
from ..nasbench.mutation import mutate_macro_unique, mutate_unique
from ..nasbench.network import NetworkConfig
from ..nasbench.ops import MAX_EDGES, MAX_VERTICES
from ..search.engine import SearchEngine, oracle_accuracy, selection_scores
from ..search.result import GenerationStats
from ..search.spec import ARCH_SPACES, SearchSpec
from ..simulator.batch import BatchSimulator
from .space import AcceleratorSpace, config_digest

#: Attempts at drawing an unseen random (cell, config) pair before the joint
#: space is declared exhausted.
_RANDOM_ATTEMPTS = 500

#: Mutation draws per child before falling back to a fresh random pair.
_MUTATION_ATTEMPTS = 30


@dataclass(frozen=True)
class CoSearchSpec:
    """One joint cell × hardware search (budget shared across both axes)."""

    metric: str = "latency"
    min_accuracy: float = 0.70
    population_size: int = 16
    generations: int = 6
    tournament_size: int = 4
    #: Probability a child takes a hardware grid step instead of a cell
    #: mutation (the cell-only engine is the 0.0 limit of this knob).
    hardware_move_probability: float = 0.5
    seed: int = 0
    max_vertices: int = MAX_VERTICES
    max_edges: int = MAX_EDGES
    enable_parameter_caching: bool = True
    #: ``"cell"`` moves over cells on the shared backbone; ``"macro"`` moves
    #: over staged :class:`~repro.nasbench.macro.MacroSpec` architectures.
    arch_space: str = "cell"

    def __post_init__(self) -> None:
        if self.metric not in ("latency", "energy"):
            raise SearchError(f"unknown metric {self.metric!r}; expected 'latency' or 'energy'")
        if self.arch_space not in ARCH_SPACES:
            raise SearchError(
                f"unknown architecture space {self.arch_space!r}; "
                f"expected one of {ARCH_SPACES}"
            )
        if self.population_size < 2:
            raise SearchError("population_size must be at least 2")
        if self.generations < 1:
            raise SearchError("a co-search needs at least one generation")
        if self.tournament_size < 1:
            raise SearchError("tournament_size must be at least 1")
        if not 0.0 <= self.hardware_move_probability <= 1.0:
            raise SearchError("hardware_move_probability must be within [0, 1]")
        if not 3 <= self.max_vertices <= MAX_VERTICES:
            raise SearchError(f"max_vertices must be in [3, {MAX_VERTICES}]")
        if not 1 <= self.max_edges <= MAX_EDGES:
            raise SearchError(f"max_edges must be in [1, {MAX_EDGES}]")

    @property
    def simulation_budget(self) -> int:
        """Total pair evaluations — identical to a fixed-hardware search with
        the same population size and generation count."""
        return self.population_size * self.generations


@dataclass(frozen=True)
class PairRecord:
    """One evaluated (architecture, configuration) pair of the co-search history.

    ``cell`` holds the searched architecture — a :class:`Cell` or, in the
    macro space, a :class:`~repro.nasbench.macro.MacroSpec`.
    """

    index: int
    cell: Cell | MacroSpec
    config: AcceleratorConfig
    key: str
    accuracy: float
    cost: float
    generation: int


@dataclass
class CoSearchResult:
    """Everything one :meth:`CoSearchEngine.run` call produced."""

    spec: CoSearchSpec
    space: AcceleratorSpace
    pairs: list[PairRecord]
    objective: np.ndarray
    archive: ParetoArchive
    configs_by_key: dict[str, AcceleratorConfig]
    generations: list[GenerationStats] = field(default_factory=list)
    best_index: int = -1
    elapsed_seconds: float = 0.0

    @property
    def best_pair(self) -> PairRecord:
        """The best feasible (cell, configuration) pair found."""
        if self.best_index < 0 or not np.isfinite(self.objective[self.best_index]):
            raise SearchError(
                "the co-search found no feasible pair (every candidate fell "
                "below the accuracy floor)"
            )
        return self.pairs[self.best_index]

    @property
    def best_objective(self) -> float:
        """Objective value of the winner (``inf`` if nothing was feasible)."""
        if self.best_index < 0:
            return float("inf")
        return float(self.objective[self.best_index])

    def dominates(self, cost: float, accuracy: float) -> bool:
        """Whether any frontier pair weakly dominates ``(cost, accuracy)``
        with strict improvement on at least one objective."""
        return any(
            entry.cost <= cost
            and entry.accuracy >= accuracy
            and (entry.cost < cost or entry.accuracy > accuracy)
            for entry in self.archive.entries
        )

    def summary_lines(self) -> list[str]:
        """Human-readable per-generation progress table.

        Renders for infeasible runs too — the table is most needed when no
        pair reached the accuracy floor.
        """
        unit = "ms" if self.spec.metric == "latency" else "mJ"
        if self.best_index >= 0 and np.isfinite(self.objective[self.best_index]):
            best = self.pairs[self.best_index]
            verdict = (
                f"best {self.best_objective:.4f} {unit} on {best.config.name} "
                f"(accuracy {best.accuracy:.4f})"
            )
        else:
            verdict = "no feasible pair (every candidate fell below the accuracy floor)"
        lines = [
            f"co-search over {self.space.size} hardware points × cells "
            f"({self.spec.metric}, accuracy >= {self.spec.min_accuracy:.2f}): "
            f"{len(self.pairs)} pairs over {len(self.generations)} generations, "
            f"{verdict}, front {len(self.archive)} points, "
            f"{self.elapsed_seconds:.2f}s",
            f"{'gen':>4}{'evaluated':>11}{'feasible':>10}"
            f"{'gen best':>12}{'best so far':>13}{'hypervolume':>13}{'admitted':>10}",
        ]
        for row in self.generations:
            lines.append(
                f"{row.generation:>4}{row.evaluated:>11}{row.feasible:>10}"
                f"{row.generation_best:>12.4f}{row.best_objective:>13.4f}"
                f"{row.hypervolume:>13.5f}{row.admitted:>10}"
            )
        return lines


class _CellsOfConfig:
    """Membership view: has this architecture been paired with a config yet?

    Adapts the co-search's pair-key ``seen`` set to the container interface
    :func:`mutate_unique` / :func:`mutate_macro_unique` de-duplicate against.
    """

    def __init__(self, seen: set[str], batch: set[str], digest: str):
        self._seen = seen
        self._batch = batch
        self._digest = digest

    def __contains__(self, cell: object) -> bool:
        if not isinstance(cell, (Cell, MacroSpec)):
            return False
        obs.count("cosearch.candidates_checked")
        key = pair_key(cell, self._digest)
        hit = key in self._seen or key in self._batch
        if hit:
            obs.count("cosearch.dedup_rejects")
        return hit


def pair_key(cell: Cell | MacroSpec, digest: str) -> str:
    """Identity of one (architecture, configuration) pair (archive/dedup key)."""
    return f"{cell.fingerprint}@{digest}"


class CoSearchEngine:
    """Regularized evolution over joint (cell, configuration) pairs.

    Parameters
    ----------
    spec:
        The co-search to run.
    space:
        The hardware grid the configuration axis moves over.
    network_config:
        Macro-architecture used to expand candidate cells.
    accuracy_model:
        Surrogate accuracy oracle (shared with feasibility decisions).
    """

    def __init__(
        self,
        spec: CoSearchSpec,
        space: AcceleratorSpace,
        network_config: NetworkConfig | None = None,
        accuracy_model: SurrogateAccuracyModel | None = None,
    ):
        if space.size < 2:
            raise SearchError(
                "the hardware space has a single point; use repro.search for "
                "fixed-hardware searches"
            )
        self.spec = spec
        self.space = space
        self.network_config = network_config or NetworkConfig()
        self.accuracy_model = accuracy_model or SurrogateAccuracyModel()
        self._simulator = BatchSimulator(enable_parameter_caching=spec.enable_parameter_caching)
        self._accuracy_cache: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self, progress: Callable[[str], None] | None = None) -> CoSearchResult:
        """Run the co-search and return its result."""
        spec = self.spec
        say = progress or (lambda message: None)
        start = time.perf_counter()
        rng = np.random.default_rng(spec.seed)

        seen: set[str] = set()
        records: list[PairRecord] = []
        configs_by_key: dict[str, AcceleratorConfig] = {}
        population: deque[int] = deque(maxlen=spec.population_size)
        archive: ParetoArchive | None = None
        selection: np.ndarray | None = None
        objective_values: list[float] = []
        rows: list[GenerationStats] = []

        for generation in range(spec.generations):
            with obs.span("cosearch.generation", generation=generation):
                with obs.span("cosearch.propose", generation=generation):
                    pairs = self._propose(
                        generation, rng, seen, records, population, selection
                    )
                with obs.span(
                    "cosearch.evaluate", generation=generation, pairs=len(pairs)
                ):
                    costs, accuracies = self._evaluate(pairs)

            new_start = len(records)
            for (cell, config), cost, accuracy in zip(pairs, costs, accuracies):
                key = pair_key(cell, config_digest(config))
                seen.add(key)
                configs_by_key[key] = config
                records.append(
                    PairRecord(
                        index=len(records),
                        cell=cell,
                        config=config,
                        key=key,
                        accuracy=float(accuracy),
                        cost=float(cost),
                        generation=generation,
                    )
                )
                feasible = np.isfinite(cost) and accuracy >= spec.min_accuracy
                objective_values.append(float(cost) if feasible else float("inf"))
            population.extend(range(new_start, len(records)))

            all_costs = np.array([record.cost for record in records])
            all_accuracies = np.array([record.accuracy for record in records])
            selection = selection_scores(all_costs, all_accuracies, spec.min_accuracy)

            if archive is None:
                finite = costs[np.isfinite(costs)]
                archive = ParetoArchive(
                    ref_cost=float(finite.max()) if finite.size else 1.0,
                    ref_accuracy=0.0,
                )
            admitted = 0
            for record in records[new_start:]:
                offered = (record.cost if record.accuracy >= spec.min_accuracy else float("inf"))
                admitted += archive.update(
                    record.cell,
                    offered,
                    record.accuracy,
                    generation=generation,
                    key=record.key,
                )
            hypervolume = archive.checkpoint()

            objective = np.array(objective_values)
            generation_slice = objective[new_start:]
            best_index = int(np.argmin(objective))
            rows.append(
                GenerationStats(
                    generation=generation,
                    evaluated=len(pairs),
                    feasible=int(np.isfinite(generation_slice).sum()),
                    generation_best=float(np.min(generation_slice)),
                    best_objective=float(objective[best_index]),
                    hypervolume=hypervolume,
                    admitted=admitted,
                )
            )
            say(
                f"generation {generation}: evaluated {len(pairs)}, "
                f"best {float(objective[best_index]):.4f}, "
                f"front {len(archive)} (hv {hypervolume:.5f})"
            )

        assert archive is not None
        objective = np.array(objective_values)
        return CoSearchResult(
            spec=spec,
            space=self.space,
            pairs=records,
            objective=objective,
            archive=archive,
            configs_by_key=configs_by_key,
            generations=rows,
            best_index=int(np.argmin(objective)),
            elapsed_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ #
    # Evaluation (one config-axis vectorized pass per generation)
    # ------------------------------------------------------------------ #
    def _evaluate(
        self, pairs: Sequence[tuple[Cell | MacroSpec, AcceleratorConfig]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cost and accuracy arrays of the generation's pairs.

        The generation's cells flatten into one :class:`LayerTable` and its
        distinct configurations into one config axis; a single
        :meth:`~BatchSimulator.evaluate_table_grid` pass yields every
        (config, cell) cost, from which each pair reads its own entry.
        """
        networks = [expand_architecture(arch, self.network_config) for arch, _ in pairs]
        table = LayerTable.from_networks(networks)

        distinct: dict[str, int] = {}
        config_rows: list[AcceleratorConfig] = []
        row_of_pair = np.empty(len(pairs), dtype=np.int64)
        for index, (_, config) in enumerate(pairs):
            digest = config_digest(config)
            if digest not in distinct:
                distinct[digest] = len(config_rows)
                config_rows.append(config)
            row_of_pair[index] = distinct[digest]

        latency, energy = self._simulator.evaluate_table_grid(table, config_rows)
        matrix = latency if self.spec.metric == "latency" else energy
        costs = matrix[row_of_pair, np.arange(len(pairs))]
        accuracies = np.array([self._accuracy_of(cell) for cell, _ in pairs])
        return costs, accuracies

    def _accuracy_of(self, arch: Cell | MacroSpec) -> float:
        """Oracle accuracy of *arch* (hardware-independent, cached).

        Macro specs key the surrogate on the macro fingerprint with the
        representative first-stage cell's structural terms and the staged
        expansion's parameter count — matching
        :meth:`~repro.nasbench.dataset.NASBenchDataset.from_macros`.
        """
        cached = self._accuracy_cache.get(arch.fingerprint)
        if cached is not None:
            return cached
        if isinstance(arch, MacroSpec):
            representative = arch.representative_cell
            accuracy = self.accuracy_model.mean_validation_accuracy(
                representative,
                fingerprint=arch.fingerprint,
                metrics=compute_metrics(representative, prune=False),
                trainable_parameters=arch.build_network().trainable_parameters,
            )
        else:
            accuracy = oracle_accuracy(arch, self.network_config, self.accuracy_model)
        self._accuracy_cache[arch.fingerprint] = accuracy
        return accuracy

    # ------------------------------------------------------------------ #
    # Candidate proposal
    # ------------------------------------------------------------------ #
    def _propose(
        self,
        generation: int,
        rng: np.random.Generator,
        seen: set[str],
        records: list[PairRecord],
        population: deque,
        selection: np.ndarray | None,
    ) -> list[tuple[Cell | MacroSpec, AcceleratorConfig]]:
        """The next generation's unique (cell, configuration) pairs."""
        spec = self.spec
        batch: list[tuple[Cell | MacroSpec, AcceleratorConfig]] = []
        batch_keys: set[str] = set()

        def admit(cell: Cell, config: AcceleratorConfig) -> None:
            batch.append((cell, config))
            batch_keys.add(pair_key(cell, config_digest(config)))

        if generation == 0:
            for _ in range(spec.population_size):
                cell, config = self._random_pair(rng, seen, batch_keys)
                admit(cell, config)
            return batch
        assert selection is not None

        for _ in range(spec.population_size):
            parent = self._tournament(rng, population, selection, records)
            child = self._child_of(parent, rng, seen, batch_keys)
            admit(*child)
        return batch

    def _tournament(
        self,
        rng: np.random.Generator,
        population: deque,
        selection: np.ndarray,
        records: list[PairRecord],
    ) -> PairRecord:
        """Best-of-k parent selection over the current (aged) population."""
        alive = list(population)
        size = min(self.spec.tournament_size, len(alive))
        picks = rng.choice(len(alive), size=size, replace=False)
        best = min(
            (alive[int(index)] for index in picks),
            key=lambda pair_index: (selection[pair_index], pair_index),
        )
        return records[best]

    def _child_of(
        self,
        parent: PairRecord,
        rng: np.random.Generator,
        seen: set[str],
        batch_keys: set[str],
    ) -> tuple[Cell | MacroSpec, AcceleratorConfig]:
        """One never-seen child pair: a hardware step or a cell mutation."""
        spec = self.spec
        if rng.random() < spec.hardware_move_probability:
            moves = self.space.neighbors(parent.config)
            order = rng.permutation(len(moves))
            for position in order:
                config = moves[int(position)]
                key = pair_key(parent.cell, config_digest(config))
                if key not in seen and key not in batch_keys:
                    return parent.cell, config
            # The whole hardware neighborhood of this cell is exhausted;
            # fall through to a cell mutation on the parent's hardware.
        parent_digest = config_digest(parent.config)
        mutate = (
            mutate_macro_unique if isinstance(parent.cell, MacroSpec) else mutate_unique
        )
        try:
            cell = mutate(
                parent.cell,
                rng,
                _CellsOfConfig(seen, batch_keys, parent_digest),
                max_vertices=spec.max_vertices,
                max_edges=spec.max_edges,
                max_attempts=_MUTATION_ATTEMPTS,
            )
            return cell, parent.config
        except DatasetError:
            # Inject fresh diversity instead of stalling the generation.
            obs.count("cosearch.random_fallbacks")
            return self._random_pair(rng, seen, batch_keys)

    def _random_pair(
        self, rng: np.random.Generator, seen: set[str], batch_keys: set[str]
    ) -> tuple[Cell | MacroSpec, AcceleratorConfig]:
        spec = self.spec
        for _ in range(_RANDOM_ATTEMPTS):
            arch: Cell | MacroSpec
            if spec.arch_space == "macro":
                arch = random_macro(
                    rng,
                    max_vertices=spec.max_vertices,
                    max_edges=spec.max_edges,
                    stem_channels=self.network_config.stem_channels,
                    image_size=self.network_config.image_size,
                    image_channels=self.network_config.image_channels,
                    num_classes=self.network_config.num_classes,
                )
            else:
                arch = random_cell(rng, spec.max_vertices, spec.max_edges)
            config = self.space.sample(rng)
            key = pair_key(arch, config_digest(config))
            if key not in seen and key not in batch_keys:
                return arch, config
        raise SearchError(
            f"could not draw an unseen random pair in {_RANDOM_ATTEMPTS} "
            "attempts; the joint search space appears exhausted"
        )


def studied_baselines(
    spec: CoSearchSpec,
    config_names: Sequence[str] = ("V1", "V2", "V3"),
    strategy: str = "evolution",
) -> dict[str, tuple[float, float]]:
    """Best ``(cost, accuracy)`` of fixed-hardware searches at the same budget.

    Runs one :class:`~repro.search.SearchEngine` per studied configuration
    with the co-search's population size, generation count, accuracy floor
    and seed — i.e. the identical simulation budget spent on the cell axis
    alone.  Configurations that cannot serve the metric (energy on V3) are
    skipped.  The returned points are what
    :meth:`CoSearchResult.dominates` is meant to be checked against.
    """
    baselines: dict[str, tuple[float, float]] = {}
    for name in config_names:
        try:
            search_spec = SearchSpec(
                strategy=strategy,
                config_name=name,
                metric=spec.metric,
                min_accuracy=spec.min_accuracy,
                population_size=spec.population_size,
                generations=spec.generations,
                seed=spec.seed,
                max_vertices=spec.max_vertices,
                max_edges=spec.max_edges,
                enable_parameter_caching=spec.enable_parameter_caching,
                arch_space=spec.arch_space,
            )
            result = SearchEngine(search_spec).run()
        except SearchError:
            continue
        if np.isfinite(result.best_objective):
            baselines[name] = (result.best_objective, result.best_accuracy)
    return baselines
