"""Validated parameter grids over :class:`AcceleratorConfig`.

The paper does not evaluate three arbitrary accelerators — V1/V2/V3 are
points in a microarchitectural design space (PE array geometry, on-chip
memories, clock, SIMD width, I/O bandwidth) whose shape is the real subject
of the study.  :class:`AcceleratorSpace` makes that space a first-class
object: a finite, validated grid of per-field value axes around a base
configuration, with deterministic enumeration, random sampling and a
one-step :meth:`~AcceleratorSpace.neighbors` move set for local search.

Every grid point is materialized through
:meth:`AcceleratorConfig.with_overrides`, so the dataclass invariants
(positive clocks, memories, PE grids, a cache fraction in ``[0, 1]``) hold
for every configuration the space can ever produce, and each point is named
``hw-<digest>`` after a stable content digest of its parameter values — the
name under which the measurement store shards its results, so sweeps over a
space are resumable per configuration.
"""

from __future__ import annotations

import itertools
from dataclasses import fields
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..arch.config import EDGE_TPU_V1, AcceleratorConfig
from ..errors import InvalidConfigError
from ..service.store import stable_digest

#: AcceleratorConfig fields a space may put an axis on (Table 2 parameters
#: plus the deployment axes — batch size and operand bit-widths; the overhead
#: constants and legacy entry counts are not searched).
SEARCHABLE_FIELDS: tuple[str, ...] = (
    "clock_mhz",
    "pes_x",
    "pes_y",
    "pe_memory_bytes",
    "cores_per_pe",
    "core_memory_bytes",
    "compute_lanes",
    "macs_per_lane",
    "pe_memory_cache_fraction",
    "io_bandwidth_gbps",
    "batch_size",
    "weight_bits",
    "activation_bits",
)

_FIELD_TYPES: dict[str, str] = {spec.name: str(spec.type) for spec in fields(AcceleratorConfig)}


def config_digest(config: AcceleratorConfig) -> str:
    """Stable content digest of a configuration's parameters (name excluded).

    Two configurations with identical parameter values share a digest no
    matter how they were constructed or named; the digest keys measurement
    shards, frontier points and co-search archive entries.
    """
    payload = {
        spec.name: getattr(config, spec.name)
        for spec in fields(config)
        if spec.name != "name"
    }
    return stable_digest({"kind": "accelerator-config", **payload})


def _coerce(field_name: str, value: object) -> int | float:
    """Normalize one axis value to its field's declared numeric type."""
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise InvalidConfigError(f"axis {field_name!r} has non-numeric value {value!r}")
    if _FIELD_TYPES[field_name] == "int":
        if float(value) != int(value):
            raise InvalidConfigError(f"axis {field_name!r} needs integer values, got {value!r}")
        return int(value)
    return float(value)


class AcceleratorSpace:
    """A finite grid of accelerator configurations around a base design.

    Parameters
    ----------
    axes:
        Mapping from an :class:`AcceleratorConfig` field name (one of
        :data:`SEARCHABLE_FIELDS`) to the values that field may take.  Axes
        are normalized — values coerced to the field's type, sorted
        ascending — so the same grid always has the same :attr:`digest`
        regardless of how it was written down.  Every value is validated
        eagerly by building the corresponding configuration.
    base:
        The configuration supplying every non-axis field (defaults to the
        paper's V1).

    Raises
    ------
    InvalidConfigError
        On an unknown or unsearchable field, an empty or duplicated axis, a
        non-numeric value, or a value the configuration invariants reject.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[int | float]],
        base: AcceleratorConfig = EDGE_TPU_V1,
    ):
        if not axes:
            raise InvalidConfigError("an AcceleratorSpace needs at least one axis")
        unknown = sorted(set(axes) - set(SEARCHABLE_FIELDS))
        if unknown:
            raise InvalidConfigError(
                f"unsearchable or unknown field(s) {', '.join(map(repr, unknown))}; "
                f"axes must be among {', '.join(SEARCHABLE_FIELDS)}"
            )
        normalized: list[tuple[str, tuple[int | float, ...]]] = []
        for field_name in sorted(axes):
            raw_values = list(axes[field_name])
            if not raw_values:
                raise InvalidConfigError(f"axis {field_name!r} has no values")
            values = [_coerce(field_name, value) for value in raw_values]
            if len(set(values)) != len(values):
                raise InvalidConfigError(f"axis {field_name!r} has duplicate values")
            for value in values:
                # Eager validation: a bad value fails at construction, not
                # mid-sweep.  Single-field checks suffice because every
                # AcceleratorConfig invariant is per-field.
                base.with_overrides(**{field_name: value})
            normalized.append((field_name, tuple(sorted(values))))
        self.axes: tuple[tuple[str, tuple[int | float, ...]], ...] = tuple(normalized)
        self.base = base

    # ------------------------------------------------------------------ #
    # Shape and identity
    # ------------------------------------------------------------------ #
    @property
    def axis_fields(self) -> tuple[str, ...]:
        """The field names carrying an axis, in canonical (sorted) order."""
        return tuple(field_name for field_name, _ in self.axes)

    @property
    def size(self) -> int:
        """Number of grid points."""
        product = 1
        for _, values in self.axes:
            product *= len(values)
        return product

    @property
    def digest(self) -> str:
        """Stable content digest of the whole space (base parameters + axes).

        Independent of axis insertion order and of the base configuration's
        name; used to key cached hardware-sweep experiments.
        """
        return stable_digest(
            {
                "kind": "accelerator-space",
                "base": {
                    spec.name: getattr(self.base, spec.name)
                    for spec in fields(self.base)
                    if spec.name != "name"
                },
                "axes": [[field_name, list(values)] for field_name, values in self.axes],
            }
        )

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #
    def _materialize(self, overrides: dict[str, int | float]) -> AcceleratorConfig:
        """Build one grid point, named after its parameter digest.

        Because the ``hw-<digest>`` name replaces the studied names, every
        grid point carries the derived energy model — including points whose
        parameters equal V3's.  That is deliberate: V3's NaN energy mirrors
        the paper's missing *publication* for that specific device, not a
        property of the parameters, and a design-space study needs energy
        estimates for the whole grid.
        """
        config = self.base.with_overrides(**overrides)
        return config.with_overrides(name=f"hw-{config_digest(config)}")

    def at(self, coordinates: Sequence[int]) -> AcceleratorConfig:
        """The grid point at per-axis value indices (canonical axis order)."""
        if len(coordinates) != len(self.axes):
            raise InvalidConfigError(
                f"expected {len(self.axes)} coordinates, got {len(coordinates)}"
            )
        overrides = {}
        for (field_name, values), index in zip(self.axes, coordinates):
            if not 0 <= index < len(values):
                raise InvalidConfigError(
                    f"coordinate {index} out of range for axis {field_name!r} "
                    f"({len(values)} values)"
                )
            overrides[field_name] = values[int(index)]
        return self._materialize(overrides)

    def enumerate(self) -> Iterator[AcceleratorConfig]:
        """Yield every grid point in deterministic lexicographic order."""
        for combination in itertools.product(*(values for _, values in self.axes)):
            yield self._materialize(dict(zip(self.axis_fields, combination)))

    def sample(self, rng: np.random.Generator) -> AcceleratorConfig:
        """Draw one uniform random grid point."""
        return self.at([int(rng.integers(len(values))) for _, values in self.axes])

    # ------------------------------------------------------------------ #
    # Grid membership and local moves
    # ------------------------------------------------------------------ #
    def coordinates(self, config: AcceleratorConfig) -> tuple[int, ...]:
        """Per-axis value indices of *config*.

        Raises :class:`InvalidConfigError` when the configuration is not a
        point of this grid (an axis value off the axis, or a non-axis field
        differing from the base).
        """
        coordinates = []
        for field_name, values in self.axes:
            value = getattr(config, field_name)
            if value not in values:
                raise InvalidConfigError(
                    f"configuration {config.name!r} is not on the grid: "
                    f"{field_name}={value!r} is not an axis value"
                )
            coordinates.append(values.index(value))
        on_axis = set(self.axis_fields)
        for spec in fields(config):
            if spec.name in on_axis or spec.name == "name":
                continue
            if getattr(config, spec.name) != getattr(self.base, spec.name):
                raise InvalidConfigError(
                    f"configuration {config.name!r} is not on the grid: "
                    f"{spec.name} differs from the base configuration"
                )
        return tuple(coordinates)

    def __contains__(self, config: AcceleratorConfig) -> bool:
        try:
            self.coordinates(config)
        except InvalidConfigError:
            return False
        return True

    def neighbors(self, config: AcceleratorConfig) -> list[AcceleratorConfig]:
        """All one-step grid moves from *config* (one axis, one value up/down).

        This is the hardware mutation operator of the co-search: like the
        cell mutations in :mod:`repro.nasbench.mutation`, every move is
        validated by construction and deterministic in order (axis by axis,
        smaller value first).
        """
        coordinates = list(self.coordinates(config))
        moves = []
        for axis_index, (_, values) in enumerate(self.axes):
            for step in (-1, 1):
                position = coordinates[axis_index] + step
                if 0 <= position < len(values):
                    shifted = list(coordinates)
                    shifted[axis_index] = position
                    moves.append(self.at(shifted))
        return moves
