"""Hardware-only Pareto analysis over a configuration grid.

Sweeping a workload population over an :class:`~repro.hwspace.space.AcceleratorSpace`
answers the paper's architectural question directly: which
microarchitectures are worth building?  A big accelerator is trivially
fast — the interesting designs are the ones no cheaper design beats.
:class:`HardwareFrontier` therefore summarizes each configuration's
performance over the population (mean/median latency, mean energy) next to
**cost proxies** derived from the configuration itself — peak TOPS (compute
area/power proxy) and total on-chip SRAM (die-area proxy) — and extracts the
(performance ↓, cost ↓) non-dominated set with the same
:func:`~repro.analysis.pareto.pareto_front_mask` kernel the accuracy/latency
analyses use.

Sweeps run through :meth:`BatchSimulator.evaluate_table_grid` — one
config-axis vectorized pass per population — or, with a
:class:`~repro.service.MeasurementStore`, through resumable shards keyed by
each grid point's content digest name (``hw-<digest>``), so an interrupted
grid sweep resumes with exactly the missing configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..analysis.pareto import pareto_front_mask
from ..arch.config import MIB, AcceleratorConfig
from ..errors import InvalidConfigError
from ..nasbench.dataset import NASBenchDataset
from ..nasbench.layer_table import LayerTable
from ..service.store import MeasurementStore
from ..simulator.batch import BatchSimulator
from ..simulator.fused import compile_and_time_table
from ..simulator.runner import MeasurementSet
from .space import config_digest

#: Attributes of :class:`ConfigPoint` usable as the performance objective.
PERFORMANCE_METRICS: tuple[str, ...] = ("mean_latency_ms", "median_latency_ms", "mean_energy_mj")

#: Attributes of :class:`ConfigPoint` usable as the hardware cost proxy.
COST_PROXIES: tuple[str, ...] = ("peak_tops", "total_sram_mib")


@dataclass(frozen=True)
class ConfigPoint:
    """One configuration's population summary plus its cost proxies."""

    config: AcceleratorConfig
    digest: str
    #: Models of the population meeting the accuracy floor (summary basis).
    num_models: int
    mean_latency_ms: float
    median_latency_ms: float
    #: NaN when the configuration has no energy model.
    mean_energy_mj: float
    peak_tops: float
    total_sram_mib: float


@dataclass(frozen=True)
class SensitivityPoint:
    """Forward-mode config sensitivities of one design point.

    Produced by :meth:`HardwareFrontier.sensitivity_report` from the dual
    columns of :func:`~repro.simulator.fused.compile_and_time_table`.  The
    derivatives answer the architect's marginal questions directly: how much
    latency does the next 100 MHz buy, and how much does the next MiB of
    SRAM?  Both are population summaries over the accuracy-filtered models
    (negative values mean the resource reduces latency).
    """

    config: AcceleratorConfig
    digest: str
    #: Models of the population meeting the accuracy floor (summary basis).
    num_models: int
    mean_latency_ms: float
    #: Population mean of d latency_ms / d clock_ghz.
    mean_dlatency_dclock_ghz: float
    #: Largest-magnitude d latency_ms / d clock_ghz over the population.
    peak_dlatency_dclock_ghz: float
    #: Population mean of d latency_ms / d SRAM MiB (relaxed cache model).
    mean_dlatency_dsram_mib: float
    #: Largest-magnitude d latency_ms / d SRAM MiB over the population.
    peak_dlatency_dsram_mib: float
    #: Fraction of models whose latency responds to SRAM at all (models
    #: whose weights are fully cached or never cached report zero).
    sram_sensitive_fraction: float


class HardwareFrontier:
    """Population-level hardware design-space analysis.

    Parameters
    ----------
    dataset:
        The workload population every configuration is summarized over.
    store:
        Optional resumable measurement store; without one, sweeps run
        in-memory through a :class:`BatchSimulator`.
    enable_parameter_caching:
        Compiler mode of the sweeps (must match the store's).
    min_accuracy:
        The paper's accuracy floor: summaries cover only models at or above
        it, so a configuration cannot look good by being fast on junk.
    """

    def __init__(
        self,
        dataset: NASBenchDataset,
        store: MeasurementStore | None = None,
        enable_parameter_caching: bool = True,
        min_accuracy: float = 0.70,
    ):
        if store is not None and store.enable_parameter_caching != enable_parameter_caching:
            raise InvalidConfigError(
                "measurement store and frontier disagree on parameter caching "
                f"(store={store.enable_parameter_caching}, "
                f"frontier={enable_parameter_caching}); the store would serve "
                "wrong-mode measurements"
            )
        self.dataset = dataset
        self.store = store
        self.min_accuracy = float(min_accuracy)
        self._simulator = BatchSimulator(enable_parameter_caching=enable_parameter_caching)
        self._mask = dataset.accuracies() >= self.min_accuracy
        if not self._mask.any():
            raise InvalidConfigError(
                f"no model of the population reaches accuracy {min_accuracy}; "
                "the frontier summaries would be empty"
            )

    # ------------------------------------------------------------------ #
    # Sweeping
    # ------------------------------------------------------------------ #
    def sweep(
        self,
        configs: Sequence[AcceleratorConfig],
        n_jobs: int = 1,
        progress_callback: Callable[[str, int, int], None] | None = None,
    ) -> MeasurementSet:
        """Measure the population on every configuration of the grid."""
        configs = list(configs)
        if self.store is not None:
            return self.store.extend(
                self.dataset,
                configs=configs,
                n_jobs=n_jobs,
                progress_callback=progress_callback,
            )
        return self._simulator.evaluate(
            self.dataset,
            configs=configs,
            n_jobs=n_jobs,
            progress_callback=progress_callback,
        )

    def summarize(
        self,
        configs: Sequence[AcceleratorConfig],
        measurements: MeasurementSet | None = None,
    ) -> list[ConfigPoint]:
        """One :class:`ConfigPoint` per configuration (sweeping if needed)."""
        configs = list(configs)
        if measurements is None:
            measurements = self.sweep(configs)
        points = []
        for config in configs:
            latencies = measurements.latencies(config.name)[self._mask]
            energies = measurements.energies(config.name)[self._mask]
            finite_energy = energies[np.isfinite(energies)]
            points.append(
                ConfigPoint(
                    config=config,
                    digest=config_digest(config),
                    num_models=int(self._mask.sum()),
                    mean_latency_ms=float(latencies.mean()),
                    median_latency_ms=float(np.median(latencies)),
                    mean_energy_mj=(
                        float(finite_energy.mean()) if finite_energy.size else float("nan")
                    ),
                    peak_tops=float(config.peak_tops),
                    total_sram_mib=config.total_on_chip_memory_bytes / MIB,
                )
            )
        return points

    def sensitivity_report(
        self, configs: Sequence[AcceleratorConfig]
    ) -> list[SensitivityPoint]:
        """One :class:`SensitivityPoint` per configuration of the grid.

        Runs the fused kernel with forward-mode dual propagation — the
        sensitivities cost one extra chunked pass on top of the sweep, not a
        finite-difference re-sweep per perturbed field.  Summaries cover the
        same accuracy-filtered models as :meth:`summarize`.
        """
        configs = list(configs)
        networks = [record.build_network(self.dataset.network_config) for record in self.dataset]
        table = LayerTable.from_networks(networks)
        result = compile_and_time_table(
            table,
            configs,
            enable_parameter_caching=self._simulator.enable_parameter_caching,
            sensitivities=True,
        )
        mask = self._mask
        points = []
        for index, config in enumerate(configs):
            latency = result.latency_ms[index][mask]
            dclock = result.dlatency_dclock_ghz[index][mask]
            dsram_mib = result.dlatency_dsram_byte[index][mask] * MIB
            points.append(
                SensitivityPoint(
                    config=config,
                    digest=config_digest(config),
                    num_models=int(mask.sum()),
                    mean_latency_ms=float(latency.mean()),
                    mean_dlatency_dclock_ghz=float(dclock.mean()),
                    peak_dlatency_dclock_ghz=float(dclock[np.argmax(np.abs(dclock))]),
                    mean_dlatency_dsram_mib=float(dsram_mib.mean()),
                    peak_dlatency_dsram_mib=float(dsram_mib[np.argmax(np.abs(dsram_mib))]),
                    sram_sensitive_fraction=float((dsram_mib != 0).mean()),
                )
            )
        return points

    # ------------------------------------------------------------------ #
    # Pareto extraction
    # ------------------------------------------------------------------ #
    @staticmethod
    def pareto(
        points: Iterable[ConfigPoint],
        metric: str = "mean_latency_ms",
        cost: str = "peak_tops",
    ) -> list[ConfigPoint]:
        """The (performance ↓, cost ↓) non-dominated configurations.

        *metric* is one of :data:`PERFORMANCE_METRICS`, *cost* one of
        :data:`COST_PROXIES`.  Reuses the (min, max) Pareto kernel by
        negating the cost axis; points with a NaN metric (e.g. energy on a
        configuration without an energy model) are excluded.  The frontier
        is returned sorted by ascending performance.
        """
        if metric not in PERFORMANCE_METRICS:
            raise InvalidConfigError(
                f"unknown performance metric {metric!r}; expected one of "
                f"{PERFORMANCE_METRICS}"
            )
        if cost not in COST_PROXIES:
            raise InvalidConfigError(f"unknown cost proxy {cost!r}; expected one of {COST_PROXIES}")
        points = list(points)
        metric_values = np.array([getattr(point, metric) for point in points])
        cost_values = np.array([getattr(point, cost) for point in points])
        usable = np.isfinite(metric_values) & np.isfinite(cost_values)
        mask = np.zeros(len(points), dtype=bool)
        if usable.any():
            front = pareto_front_mask(metric_values[usable], -cost_values[usable])
            mask[np.flatnonzero(usable)[front]] = True
        frontier = [point for point, keep in zip(points, mask) if keep]
        return sorted(frontier, key=lambda point: getattr(point, metric))
